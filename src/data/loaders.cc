#include "data/loaders.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/failpoint.h"
#include "util/strings.h"

namespace bolton {

namespace {

struct SparseRow {
  int label;
  std::vector<std::pair<size_t, double>> entries;  // 0-based index -> value
};

Result<SparseRow> ParseLibsvmLine(const std::string& line, size_t line_no) {
  SparseRow row;
  std::istringstream in(line);
  std::string token;
  if (!(in >> token)) {
    return Status::InvalidArgument(
        StrFormat("line %zu: missing label", line_no));
  }
  auto label = ParseInt(token);
  if (!label.ok()) {
    // Some files carry real-valued labels; accept and round integral ones.
    auto as_double = ParseDouble(token);
    if (!as_double.ok() || !std::isfinite(as_double.value()) ||
        as_double.value() != std::floor(as_double.value())) {
      return Status::InvalidArgument(
          StrFormat("line %zu: non-integer label '%s'", line_no,
                    token.c_str()));
    }
    row.label = static_cast<int>(as_double.value());
  } else {
    row.label = static_cast<int>(label.value());
  }
  while (in >> token) {
    size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: malformed feature '%s'", line_no,
                    token.c_str()));
    }
    auto idx = ParseInt(token.substr(0, colon));
    auto val = ParseDouble(token.substr(colon + 1));
    if (!idx.ok()) return idx.status().WithContext(StrFormat("line %zu", line_no));
    if (!val.ok()) return val.status().WithContext(StrFormat("line %zu", line_no));
    if (idx.value() < 1) {
      return Status::InvalidArgument(
          StrFormat("line %zu: libsvm indices are 1-based", line_no));
    }
    if (!std::isfinite(val.value())) {
      // strtod happily parses "nan"/"inf"; one such value poisons every
      // gradient, so reject at the source with full context.
      return Status::InvalidArgument(
          StrFormat("line %zu: non-finite value in feature '%s'", line_no,
                    token.c_str()));
    }
    row.entries.emplace_back(static_cast<size_t>(idx.value() - 1), val.value());
  }
  return row;
}

}  // namespace

Result<Dataset> LoadLibsvm(const std::string& path, size_t dim) {
  BOLTON_FAILPOINT("loader.open");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::vector<SparseRow> rows;
  size_t max_index = 0;
  bool saw_zero_label = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    BOLTON_FAILPOINT("loader.row");
    BOLTON_ASSIGN_OR_RETURN(SparseRow row,
                            ParseLibsvmLine(std::string(stripped), line_no));
    for (const auto& [idx, val] : row.entries) {
      (void)val;
      if (idx + 1 > max_index) max_index = idx + 1;
      if (dim != 0 && idx >= dim) {
        return Status::OutOfRange(
            StrFormat("line %zu: index %zu exceeds declared dim %zu", line_no,
                      idx + 1, dim));
      }
    }
    if (row.label == 0) saw_zero_label = true;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument(path + " holds no examples");

  size_t final_dim = dim == 0 ? max_index : dim;
  int max_label = 0;
  for (const SparseRow& r : rows) max_label = std::max(max_label, r.label);
  // 0/1 files: map to ±1. Multiclass files keep labels as class ids.
  bool binary01 = saw_zero_label && max_label <= 1;
  int num_classes = binary01 ? 2 : std::max(2, max_label + (saw_zero_label ? 1 : 0));
  bool binary_pm1 = !saw_zero_label && max_label <= 1;
  if (binary_pm1) num_classes = 2;

  Dataset out(final_dim, num_classes);
  for (SparseRow& r : rows) {
    Vector x(final_dim);
    for (const auto& [idx, val] : r.entries) x[idx] = val;
    int label = r.label;
    if (binary01) label = (label == 0) ? -1 : +1;
    out.Add(Example{std::move(x), label});
  }
  return out;
}

Result<Dataset> LoadCsv(const std::string& path) {
  BOLTON_FAILPOINT("loader.open");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::vector<std::vector<double>> rows;
  std::string line;
  size_t line_no = 0;
  size_t width = 0;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    BOLTON_FAILPOINT("loader.row");
    std::vector<std::string> fields = StrSplit(stripped, ',');
    std::vector<double> values;
    values.reserve(fields.size());
    // Scan every field so a malformed DATA row (some fields numeric) can
    // be told apart from a header row (no field numeric): only the latter
    // may be skipped, and only as the first row. The old rule silently
    // dropped any unparseable first row — including truncated data.
    size_t bad_column = 0;  // 1-based column of the first parse failure
    std::string bad_field;
    bool any_numeric = false;
    for (size_t c = 0; c < fields.size(); ++c) {
      auto v = ParseDouble(fields[c]);
      if (!v.ok()) {
        if (bad_column == 0) {
          bad_column = c + 1;
          bad_field = fields[c];
        }
        continue;
      }
      any_numeric = true;
      if (bad_column == 0) {
        if (!std::isfinite(v.value())) {
          // strtod accepts "nan"/"inf"; one such field poisons the model.
          return Status::InvalidArgument(StrFormat(
              "line %zu, column %zu: non-finite value '%s'", line_no, c + 1,
              fields[c].c_str()));
        }
        values.push_back(v.value());
      }
    }
    if (bad_column != 0) {
      // At most ONE leading all-text row is a header; anything else
      // non-numeric is an error.
      if (rows.empty() && !any_numeric && !header_skipped) {
        header_skipped = true;
        continue;
      }
      return Status::InvalidArgument(
          StrFormat("line %zu, column %zu: non-numeric field '%s'", line_no,
                    bad_column, bad_field.c_str()));
    }
    if (width == 0) {
      width = values.size();
      if (width < 2) {
        return Status::InvalidArgument(
            StrFormat("line %zu: need at least 1 feature + label", line_no));
      }
    } else if (values.size() != width) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected %zu fields, got %zu", line_no, width,
                    values.size()));
    }
    rows.push_back(std::move(values));
  }
  if (rows.empty()) return Status::InvalidArgument(path + " holds no examples");

  int max_label = 0;
  bool saw_zero = false, saw_negative = false;
  for (const auto& r : rows) {
    double raw = r.back();
    if (raw != std::floor(raw)) {
      return Status::InvalidArgument("CSV labels must be integers");
    }
    int label = static_cast<int>(raw);
    max_label = std::max(max_label, label);
    saw_zero |= (label == 0);
    saw_negative |= (label < 0);
  }
  bool binary01 = saw_zero && !saw_negative && max_label <= 1;
  int num_classes =
      (binary01 || saw_negative) ? 2 : std::max(2, max_label + (saw_zero ? 1 : 0));

  Dataset out(width - 1, num_classes);
  for (auto& r : rows) {
    Vector x(width - 1);
    for (size_t i = 0; i + 1 < r.size(); ++i) x[i] = r[i];
    int label = static_cast<int>(r.back());
    if (binary01) label = (label == 0) ? -1 : +1;
    out.Add(Example{std::move(x), label});
  }
  return out;
}

Status SaveLibsvm(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Example& e = dataset[i];
    out << e.label;
    for (size_t j = 0; j < e.x.dim(); ++j) {
      if (e.x[j] != 0.0) out << ' ' << (j + 1) << ':' << e.x[j];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace bolton
