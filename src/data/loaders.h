#ifndef BOLTON_DATA_LOADERS_H_
#define BOLTON_DATA_LOADERS_H_

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace bolton {

/// Loads a dataset in LIBSVM sparse format:
///   <label> <index>:<value> <index>:<value> ...
/// Indices are 1-based (standard for the format). If `dim` is 0 the
/// dimension is inferred as the largest index seen; otherwise indices above
/// `dim` are an error. Labels must be integers; for binary files use ±1 (a
/// 0/1 file is accepted and mapped to ∓1/±1).
Result<Dataset> LoadLibsvm(const std::string& path, size_t dim = 0);

/// Loads a dense CSV with the label in the last column. Lines starting with
/// '#' and blank lines are skipped; an optional non-numeric first row is
/// treated as a header.
Result<Dataset> LoadCsv(const std::string& path);

/// Writes a dataset in LIBSVM format (1-based indices, zeros skipped).
Status SaveLibsvm(const Dataset& dataset, const std::string& path);

}  // namespace bolton

#endif  // BOLTON_DATA_LOADERS_H_
