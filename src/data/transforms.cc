#include "data/transforms.h"

#include <algorithm>
#include <cmath>

#include "random/permutation.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

Result<Standardizer> Standardizer::Fit(const Dataset& data) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const size_t d = data.dim();
  const double m = static_cast<double>(data.size());

  Vector means(d);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < d; ++j) means[j] += data[i].x[j];
  }
  means *= 1.0 / m;

  Vector stddevs(d);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      double centered = data[i].x[j] - means[j];
      stddevs[j] += centered * centered;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddevs[j] = std::sqrt(stddevs[j] / m);
    if (stddevs[j] == 0.0) stddevs[j] = 1.0;  // constant feature
  }
  return Standardizer(std::move(means), std::move(stddevs));
}

Vector Standardizer::Apply(const Vector& x) const {
  BOLTON_CHECK(x.dim() == means_.dim());
  Vector out(x.dim());
  for (size_t j = 0; j < x.dim(); ++j) {
    out[j] = (x[j] - means_[j]) / stddevs_[j];
  }
  return out;
}

Result<Dataset> Standardizer::Apply(const Dataset& data) const {
  if (data.dim() != means_.dim()) {
    return Status::InvalidArgument(
        StrFormat("dataset dim %zu != fitted dim %zu", data.dim(),
                  means_.dim()));
  }
  Dataset out(data.dim(), data.num_classes());
  for (size_t i = 0; i < data.size(); ++i) {
    out.Add(Example{Apply(data[i].x), data[i].label});
  }
  return out;
}

std::map<int, size_t> ClassCounts(const Dataset& data) {
  std::map<int, size_t> counts;
  for (size_t i = 0; i < data.size(); ++i) ++counts[data[i].label];
  return counts;
}

Result<std::pair<Dataset, Dataset>> StratifiedSplit(const Dataset& data,
                                                    double test_fraction,
                                                    Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  // Group indices per class, shuffle within each class, then cut.
  std::map<int, std::vector<size_t>> per_class;
  for (size_t i = 0; i < data.size(); ++i) {
    per_class[data[i].label].push_back(i);
  }
  Dataset train(data.dim(), data.num_classes());
  Dataset test(data.dim(), data.num_classes());
  for (auto& [label, indices] : per_class) {
    (void)label;
    ShuffleInPlace(&indices, rng);
    size_t test_count =
        static_cast<size_t>(std::lround(test_fraction * indices.size()));
    for (size_t i = 0; i < indices.size(); ++i) {
      (i < test_count ? test : train).Add(data[indices[i]]);
    }
  }
  // Interleave classes rather than leaving them grouped.
  train.Shuffle(rng);
  test.Shuffle(rng);
  return std::make_pair(std::move(train), std::move(test));
}

Result<Dataset> DownsampleMajority(const Dataset& data, double max_ratio,
                                   Rng* rng) {
  if (max_ratio < 1.0) {
    return Status::InvalidArgument("max_ratio must be >= 1");
  }
  std::vector<size_t> positives, negatives;
  for (size_t i = 0; i < data.size(); ++i) {
    (data[i].label == +1 ? positives : negatives).push_back(i);
  }
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument("both classes must be present");
  }
  std::vector<size_t>* majority =
      positives.size() >= negatives.size() ? &positives : &negatives;
  const std::vector<size_t>* minority =
      positives.size() >= negatives.size() ? &negatives : &positives;

  size_t cap = static_cast<size_t>(max_ratio * minority->size());
  ShuffleInPlace(majority, rng);
  if (majority->size() > cap) majority->resize(std::max<size_t>(1, cap));

  std::vector<size_t> keep = *minority;
  keep.insert(keep.end(), majority->begin(), majority->end());
  ShuffleInPlace(&keep, rng);
  return data.Subset(keep);
}

}  // namespace bolton
