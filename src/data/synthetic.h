#ifndef BOLTON_DATA_SYNTHETIC_H_
#define BOLTON_DATA_SYNTHETIC_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Synthetic stand-ins for the paper's evaluation datasets.
///
/// The paper evaluates on MNIST, Protein, Forest Covertype, HIGGS, and
/// KDDCup-99, none of which can be downloaded in this environment. Each
/// generator below produces a dataset with the same feature dimension,
/// class count, and (scalable) size as the original, drawn from a
/// linear-teacher model whose margin/noise profile is tuned so that
/// non-private logistic regression reaches roughly the accuracy the paper
/// reports for "Noiseless". Accuracy *shapes* across ε, passes, and batch
/// sizes — the quantities the figures compare — are preserved (see
/// DESIGN.md §2). Real files can still be used via data/loaders.h.

/// Parameters of the linear-teacher generators.
struct SyntheticConfig {
  /// Number of examples to generate.
  size_t num_examples = 10000;
  /// Feature dimension.
  size_t dim = 50;
  /// Number of classes (2 => labels ±1).
  int num_classes = 2;
  /// Distance of class prototypes from the origin before normalization;
  /// larger = more separable.
  double margin = 1.0;
  /// Stddev of isotropic Gaussian feature noise around the prototype.
  double noise_stddev = 1.0;
  /// Probability a label is flipped to a uniformly random other class
  /// (irreducible Bayes error).
  double label_flip_prob = 0.0;
  /// RNG seed; the same seed reproduces the same dataset.
  uint64_t seed = 42;
};

/// Draws a dataset from a K-prototype linear-teacher model:
/// prototype_k ~ uniform on the sphere of radius `margin`;
/// x = prototype_{y} + N(0, noise_stddev² I), then scaled to ‖x‖ ≤ 1.
/// Requires num_examples ≥ 1, dim ≥ 1, num_classes ≥ 2.
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

/// The binary two-Gaussians workload used by Bismarck's own data synthesizer
/// (Figure 2's scalability datasets): d-dimensional blobs at ±margin·e̅ with
/// unit noise.
Result<Dataset> GenerateTwoGaussians(size_t num_examples, size_t dim,
                                     double margin, uint64_t seed);

/// MNIST stand-in: 10 classes, 784 raw dimensions (project with
/// GaussianRandomProjection to 50, as the paper does), 60k train / 10k test
/// at scale=1.
struct MnistLikeSpec {
  double scale = 1.0;
  uint64_t seed = 1;
};
Result<std::pair<Dataset, Dataset>> GenerateMnistLike(const MnistLikeSpec& spec);

/// Protein stand-in: binary, d=74, 36438/36438 split at scale=1 (the paper
/// halves the 72876-row training file).
Result<std::pair<Dataset, Dataset>> GenerateProteinLike(double scale,
                                                        uint64_t seed);

/// Forest Covertype stand-in: binary, d=54, 498010/83002 at scale=1.
Result<std::pair<Dataset, Dataset>> GenerateCovertypeLike(double scale,
                                                          uint64_t seed);

/// HIGGS stand-in: binary, d=28, 10.5M/0.5M at scale=1 (use small scales!).
Result<std::pair<Dataset, Dataset>> GenerateHiggsLike(double scale,
                                                      uint64_t seed);

/// KDDCup-99 stand-in: binary (normal vs. attack), d=41, 494021/311029
/// at scale=1.
Result<std::pair<Dataset, Dataset>> GenerateKddcupLike(double scale,
                                                       uint64_t seed);

/// Looks up a generator by dataset name ("mnist", "protein", "covertype",
/// "higgs", "kddcup"); returns {train, test}. Unknown names yield NotFound.
Result<std::pair<Dataset, Dataset>> GenerateByName(const std::string& name,
                                                   double scale,
                                                   uint64_t seed);

}  // namespace bolton

#endif  // BOLTON_DATA_SYNTHETIC_H_
