#ifndef BOLTON_DATA_PROJECTION_H_
#define BOLTON_DATA_PROJECTION_H_

#include <cstddef>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// Gaussian random projection (paper §2, "Random Projection").
///
/// Samples a fixed linear map T : R^d → R^k with iid N(0, 1/k) entries and
/// applies it to every feature vector. Because T is sampled independently of
/// the data, neighboring datasets stay neighboring under T, so projecting
/// before private SGD does not affect the privacy analysis — it only shrinks
/// the noise dimension d, which enters the Laplace mechanism's magnitude
/// linearly (Theorem 2). The paper projects MNIST 784 → 50 this way.
class GaussianRandomProjection {
 public:
  /// Creates the transform. Requires 1 <= output_dim; typically
  /// output_dim << input_dim.
  static Result<GaussianRandomProjection> Create(size_t input_dim,
                                                 size_t output_dim,
                                                 uint64_t seed);

  size_t input_dim() const { return map_.cols(); }
  size_t output_dim() const { return map_.rows(); }

  /// Projects one feature vector. Requires x.dim() == input_dim().
  Vector Apply(const Vector& x) const;

  /// Projects every example and re-normalizes features to the unit ball
  /// (the analysis requires ‖x‖ ≤ 1 post-projection).
  Result<Dataset> Apply(const Dataset& dataset) const;

 private:
  explicit GaussianRandomProjection(Matrix map) : map_(std::move(map)) {}
  Matrix map_;
};

}  // namespace bolton

#endif  // BOLTON_DATA_PROJECTION_H_
