#include "data/sparse_dataset.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace bolton {

void SparseDataset::Add(SparseExample example) {
  BOLTON_CHECK(example.x.dim() == dim_);
  examples_.push_back(std::move(example));
}

void SparseDataset::NormalizeToUnitBall() {
  for (SparseExample& e : examples_) {
    double n = e.x.Norm();
    if (n > 1.0) e.x.Scale(1.0 / n);
  }
}

double SparseDataset::AverageNnz() const {
  if (examples_.empty()) return 0.0;
  size_t total = 0;
  for (const SparseExample& e : examples_) total += e.x.nnz();
  return static_cast<double>(total) / static_cast<double>(examples_.size());
}

Dataset SparseDataset::ToDense() const {
  Dataset out(dim_, num_classes_);
  for (const SparseExample& e : examples_) {
    out.Add(Example{e.x.ToDense(), e.label});
  }
  return out;
}

SparseDataset SparseDataset::FromDense(const Dataset& dense) {
  SparseDataset out(dense.dim(), dense.num_classes());
  for (size_t i = 0; i < dense.size(); ++i) {
    out.Add(SparseExample{SparseVector::FromDense(dense[i].x),
                          dense[i].label});
  }
  return out;
}

Result<SparseDataset> LoadLibsvmSparse(const std::string& path, size_t dim) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  struct Row {
    int label;
    std::vector<SparseVector::Entry> entries;
  };
  std::vector<Row> rows;
  size_t max_index = 0;
  bool saw_zero_label = false;
  int max_label = 0;

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;

    std::istringstream tokens{std::string(stripped)};
    std::string token;
    if (!(tokens >> token)) continue;
    auto label = ParseInt(token);
    if (!label.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: non-integer label '%s'", line_no,
                    token.c_str()));
    }
    Row row;
    row.label = static_cast<int>(label.value());
    while (tokens >> token) {
      size_t colon = token.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("line %zu: malformed feature '%s'", line_no,
                      token.c_str()));
      }
      auto idx = ParseInt(token.substr(0, colon));
      auto val = ParseDouble(token.substr(colon + 1));
      if (!idx.ok() || idx.value() < 1) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad 1-based index", line_no));
      }
      if (!val.ok()) {
        return val.status().WithContext(StrFormat("line %zu", line_no));
      }
      size_t index = static_cast<size_t>(idx.value() - 1);
      if (dim != 0 && index >= dim) {
        return Status::OutOfRange(
            StrFormat("line %zu: index %zu exceeds declared dim %zu",
                      line_no, index + 1, dim));
      }
      max_index = std::max(max_index, index + 1);
      row.entries.emplace_back(index, val.value());
    }
    saw_zero_label |= (row.label == 0);
    max_label = std::max(max_label, row.label);
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::InvalidArgument(path + " holds no examples");

  const size_t final_dim = dim == 0 ? max_index : dim;
  const bool binary01 = saw_zero_label && max_label <= 1;
  int num_classes =
      binary01 ? 2 : std::max(2, max_label + (saw_zero_label ? 1 : 0));
  if (!saw_zero_label && max_label <= 1) num_classes = 2;

  SparseDataset out(final_dim, num_classes);
  for (Row& row : rows) {
    BOLTON_ASSIGN_OR_RETURN(
        SparseVector x,
        SparseVector::FromEntries(final_dim, std::move(row.entries)));
    int label = row.label;
    if (binary01) label = (label == 0) ? -1 : +1;
    out.Add(SparseExample{std::move(x), label});
  }
  return out;
}

}  // namespace bolton
