#ifndef BOLTON_DATA_SPARSE_DATASET_H_
#define BOLTON_DATA_SPARSE_DATASET_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "linalg/sparse_vector.h"
#include "util/result.h"

namespace bolton {

/// One labeled sparse example (±1 labels for binary tasks).
struct SparseExample {
  SparseVector x;
  int label = 0;
};

/// A dataset that keeps the sparse representation of its features end to
/// end. Mirrors Dataset's interface where the sparse training path needs
/// it; convert with ToDense()/FromDense() to reach the rest of the library.
class SparseDataset {
 public:
  SparseDataset() = default;
  SparseDataset(size_t dim, int num_classes)
      : dim_(dim), num_classes_(num_classes) {}

  size_t size() const { return examples_.size(); }
  size_t dim() const { return dim_; }
  int num_classes() const { return num_classes_; }
  bool empty() const { return examples_.empty(); }

  const SparseExample& operator[](size_t i) const { return examples_[i]; }

  /// Appends an example; the feature dimension must match dim().
  void Add(SparseExample example);

  /// Scales each feature vector to ‖x‖ ≤ 1 (the paper's preprocessing).
  void NormalizeToUnitBall();

  /// Average nnz per example — the quantity the sparse path's O(nnz)
  /// gradient kernel scales with.
  double AverageNnz() const;

  /// Materializes the dense equivalent.
  Dataset ToDense() const;

  /// Sparsifies a dense dataset.
  static SparseDataset FromDense(const Dataset& dense);

 private:
  size_t dim_ = 0;
  int num_classes_ = 2;
  std::vector<SparseExample> examples_;
};

/// Loads LIBSVM keeping sparsity (same format rules as LoadLibsvm).
Result<SparseDataset> LoadLibsvmSparse(const std::string& path,
                                       size_t dim = 0);

}  // namespace bolton

#endif  // BOLTON_DATA_SPARSE_DATASET_H_
