#include "data/projection.h"

#include <cmath>

#include "util/strings.h"

namespace bolton {

Result<GaussianRandomProjection> GaussianRandomProjection::Create(
    size_t input_dim, size_t output_dim, uint64_t seed) {
  if (input_dim < 1 || output_dim < 1) {
    return Status::InvalidArgument("projection dims must be >= 1");
  }
  Rng rng(seed);
  Matrix map(output_dim, input_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(output_dim));
  for (size_t r = 0; r < output_dim; ++r) {
    for (size_t c = 0; c < input_dim; ++c) {
      map(r, c) = scale * rng.Gaussian();
    }
  }
  return GaussianRandomProjection(std::move(map));
}

Vector GaussianRandomProjection::Apply(const Vector& x) const {
  return map_.Multiply(x);
}

Result<Dataset> GaussianRandomProjection::Apply(const Dataset& dataset) const {
  if (dataset.dim() != input_dim()) {
    return Status::InvalidArgument(
        StrFormat("dataset dim %zu != projection input dim %zu",
                  dataset.dim(), input_dim()));
  }
  Dataset out(output_dim(), dataset.num_classes());
  for (size_t i = 0; i < dataset.size(); ++i) {
    out.Add(Example{Apply(dataset[i].x), dataset[i].label});
  }
  out.NormalizeToUnitBall();
  return out;
}

}  // namespace bolton
