#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "random/distributions.h"
#include "util/strings.h"

namespace bolton {

namespace {

// Scales a raw count by `scale`, keeping at least `min_count` examples so
// tiny scales still produce usable train/test sets.
size_t Scaled(size_t raw, double scale, size_t min_count = 64) {
  double scaled = static_cast<double>(raw) * scale;
  return std::max(min_count, static_cast<size_t>(scaled));
}

// Generates train+test from one teacher so the two splits share the
// distribution, then normalizes both to the unit ball.
Result<std::pair<Dataset, Dataset>> GenerateSplit(SyntheticConfig config,
                                                  size_t test_count) {
  size_t train_count = config.num_examples;
  config.num_examples = train_count + test_count;
  BOLTON_ASSIGN_OR_RETURN(Dataset all, GenerateSynthetic(config));
  return all.SplitAt(train_count);
}

}  // namespace

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_examples < 1) {
    return Status::InvalidArgument("num_examples must be >= 1");
  }
  if (config.dim < 1) return Status::InvalidArgument("dim must be >= 1");
  if (config.num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (config.label_flip_prob < 0.0 || config.label_flip_prob >= 1.0) {
    return Status::InvalidArgument("label_flip_prob must be in [0, 1)");
  }
  if (config.noise_stddev < 0.0) {
    return Status::InvalidArgument("noise_stddev must be >= 0");
  }

  Rng rng(config.seed);
  // One prototype per class, uniformly random directions at radius `margin`.
  std::vector<Vector> prototypes;
  prototypes.reserve(config.num_classes);
  for (int k = 0; k < config.num_classes; ++k) {
    Vector p = SampleUnitSphere(config.dim, &rng);
    p *= config.margin;
    prototypes.push_back(std::move(p));
  }

  Dataset out(config.dim, config.num_classes);
  for (size_t i = 0; i < config.num_examples; ++i) {
    int cls = static_cast<int>(rng.UniformInt(config.num_classes));
    Vector x = prototypes[cls];
    if (config.noise_stddev > 0.0) {
      x += SampleGaussianVector(config.dim, config.noise_stddev, &rng);
    }
    int label = cls;
    if (config.label_flip_prob > 0.0 &&
        rng.UniformDouble() < config.label_flip_prob) {
      // Flip to a uniformly random *other* class.
      int other = static_cast<int>(rng.UniformInt(config.num_classes - 1));
      label = other >= cls ? other + 1 : other;
    }
    if (config.num_classes == 2) label = (label == 0) ? -1 : +1;
    out.Add(Example{std::move(x), label});
  }
  out.NormalizeToUnitBall();
  return out;
}

Result<Dataset> GenerateTwoGaussians(size_t num_examples, size_t dim,
                                     double margin, uint64_t seed) {
  SyntheticConfig config;
  config.num_examples = num_examples;
  config.dim = dim;
  config.num_classes = 2;
  config.margin = margin;
  config.noise_stddev = 1.0;
  config.seed = seed;
  return GenerateSynthetic(config);
}

Result<std::pair<Dataset, Dataset>> GenerateMnistLike(
    const MnistLikeSpec& spec) {
  // MNIST: 10 well-separated digit classes in 784 dims; one-vs-all logistic
  // regression reaches ~0.9 on the real data after projection to 50 dims.
  SyntheticConfig config;
  config.num_examples = Scaled(60000, spec.scale);
  config.dim = 784;
  config.num_classes = 10;
  // Real MNIST's class structure dominates its pixel noise; a large margin
  // keeps the stand-in learnable after 784 → 50 random projection.
  config.margin = 8.0;
  config.noise_stddev = 1.0;
  config.label_flip_prob = 0.02;
  config.seed = spec.seed;
  return GenerateSplit(config, Scaled(10000, spec.scale));
}

Result<std::pair<Dataset, Dataset>> GenerateProteinLike(double scale,
                                                        uint64_t seed) {
  // Protein: binary, 74 features; "logistic regression models have very good
  // test accuracy on it" (§4.3) — high margin, low flip noise.
  SyntheticConfig config;
  config.num_examples = Scaled(36438, scale);
  config.dim = 74;
  config.num_classes = 2;
  config.margin = 2.5;
  config.noise_stddev = 1.0;
  config.label_flip_prob = 0.01;
  config.seed = seed;
  return GenerateSplit(config, Scaled(36438, scale));
}

Result<std::pair<Dataset, Dataset>> GenerateCovertypeLike(double scale,
                                                          uint64_t seed) {
  // Covertype: binary view of forest cover types, 54 features, large m,
  // moderately noisy (paper's noiseless accuracy ~0.75).
  SyntheticConfig config;
  config.num_examples = Scaled(498010, scale);
  config.dim = 54;
  config.num_classes = 2;
  config.margin = 1.0;
  config.noise_stddev = 1.2;
  config.label_flip_prob = 0.08;
  config.seed = seed;
  return GenerateSplit(config, Scaled(83002, scale));
}

Result<std::pair<Dataset, Dataset>> GenerateHiggsLike(double scale,
                                                      uint64_t seed) {
  // HIGGS: 28 physics features, 10.5M rows, noiseless accuracy ~0.64 —
  // a hard, noisy task where privacy "comes for free" at large m.
  SyntheticConfig config;
  config.num_examples = Scaled(10500000, scale);
  config.dim = 28;
  config.num_classes = 2;
  config.margin = 0.9;
  config.noise_stddev = 1.1;
  config.label_flip_prob = 0.18;
  config.seed = seed;
  return GenerateSplit(config, Scaled(500000, scale));
}

Result<std::pair<Dataset, Dataset>> GenerateKddcupLike(double scale,
                                                       uint64_t seed) {
  // KDDCup-99: 41 features, highly separable (normal vs. attack is nearly
  // deterministic given the features) — accuracy close to 1.
  SyntheticConfig config;
  config.num_examples = Scaled(494021, scale);
  config.dim = 41;
  config.num_classes = 2;
  config.margin = 4.0;
  config.noise_stddev = 1.0;
  config.label_flip_prob = 0.003;
  config.seed = seed;
  return GenerateSplit(config, Scaled(311029, scale));
}

Result<std::pair<Dataset, Dataset>> GenerateByName(const std::string& name,
                                                   double scale,
                                                   uint64_t seed) {
  if (name == "mnist") {
    MnistLikeSpec spec;
    spec.scale = scale;
    spec.seed = seed;
    return GenerateMnistLike(spec);
  }
  if (name == "protein") return GenerateProteinLike(scale, seed);
  if (name == "covertype") return GenerateCovertypeLike(scale, seed);
  if (name == "higgs") return GenerateHiggsLike(scale, seed);
  if (name == "kddcup") return GenerateKddcupLike(scale, seed);
  return Status::NotFound(StrFormat(
      "unknown dataset '%s' (expected mnist|protein|covertype|higgs|kddcup)",
      name.c_str()));
}

}  // namespace bolton
