#ifndef BOLTON_DATA_TRANSFORMS_H_
#define BOLTON_DATA_TRANSFORMS_H_

#include <map>
#include <utility>

#include "data/dataset.h"
#include "random/rng.h"
#include "util/result.h"

namespace bolton {

/// A fitted per-feature affine standardizer: x' = (x − mean) / stddev.
///
/// Real tabular datasets (Covertype, KDDCup) mix feature scales by orders
/// of magnitude; standardizing BEFORE the unit-ball normalization the
/// privacy analysis requires keeps every feature informative. Fit on the
/// training set only, then apply the same transform to the test set —
/// fitting on test data leaks it.
class Standardizer {
 public:
  /// Fits means and standard deviations on `data`. Constant features get
  /// stddev 1 (they pass through centered). Requires a non-empty dataset.
  static Result<Standardizer> Fit(const Dataset& data);

  /// Transforms one feature vector. Requires matching dimension.
  Vector Apply(const Vector& x) const;

  /// Transforms a whole dataset (labels untouched). Does NOT re-normalize
  /// to the unit ball; call Dataset::NormalizeToUnitBall afterwards when
  /// feeding private training.
  Result<Dataset> Apply(const Dataset& data) const;

  const Vector& means() const { return means_; }
  const Vector& stddevs() const { return stddevs_; }

 private:
  Standardizer(Vector means, Vector stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}
  Vector means_;
  Vector stddevs_;
};

/// Per-class example counts.
std::map<int, size_t> ClassCounts(const Dataset& data);

/// Splits into {train, test} with `test_fraction` of EACH class in the test
/// split (stratified), preserving class ratios that a plain random split
/// can skew on imbalanced data. Shuffles with `rng` first. Requires
/// test_fraction in (0, 1) and at least one example.
Result<std::pair<Dataset, Dataset>> StratifiedSplit(const Dataset& data,
                                                    double test_fraction,
                                                    Rng* rng);

/// Rebalances a binary dataset by down-sampling the majority class to at
/// most `max_ratio` times the minority class size. Used to tame the 1:9
/// imbalance of one-vs-all views when training non-private reference
/// models. Requires max_ratio >= 1 and both classes present.
Result<Dataset> DownsampleMajority(const Dataset& data, double max_ratio,
                                   Rng* rng);

}  // namespace bolton

#endif  // BOLTON_DATA_TRANSFORMS_H_
