#include "obs/perf_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace bolton {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_force_unavailable{false};

/// Process totals (the sum of every outermost CounterScope). Plain relaxed
/// atomics: totals are diagnostics, not a release barrier.
std::atomic<uint64_t> g_total_cycles{0};
std::atomic<uint64_t> g_total_instructions{0};
std::atomic<uint64_t> g_total_cache_references{0};
std::atomic<uint64_t> g_total_cache_misses{0};
std::atomic<uint64_t> g_total_branch_misses{0};
std::atomic<uint64_t> g_total_task_clock_ns{0};
std::atomic<uint64_t> g_total_hw_contributions{0};

/// The five hardware events, in the fixed order the group is opened and
/// read (PERF_FORMAT_GROUP preserves open order).
struct HwEvent {
  uint32_t type;
  uint64_t config;
  const char* name;
};
constexpr HwEvent kHwEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache-references"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache-misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch-misses"},
};
constexpr size_t kHwEventCount = sizeof(kHwEvents) / sizeof(kHwEvents[0]);

int OpenPerfEvent(uint32_t type, uint64_t config, int group_fd,
                  bool group_leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  // User-space only: works at perf_event_paranoid <= 2 without privileges,
  // and "our code, not the kernel" is the attribution the solver needs.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // The leader starts disabled; the whole group is enabled with one ioctl
  // after every sibling opened, so all six counts cover the same interval.
  attr.disabled = group_leader ? 1 : 0;
  if (group_leader) attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd,
                                    PERF_FLAG_FD_CLOEXEC));
}

int ReadParanoidLevel() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) return -999;
  int level = -999;
  if (std::fscanf(f, "%d", &level) != 1) level = -999;
  std::fclose(f);
  return level;
}

/// Per-thread counter file descriptors, opened lazily at the probed tier.
/// The thread_local destructor closes them when the thread exits.
struct ThreadPerfState {
  bool initialized = false;
  int group_fd = -1;                       // hardware group leader (cycles)
  int sibling_fds[kHwEventCount - 1] = {-1, -1, -1, -1};
  int task_clock_fd = -1;                  // separate software event

  ~ThreadPerfState() {
    if (group_fd >= 0) ::close(group_fd);
    for (int fd : sibling_fds) {
      if (fd >= 0) ::close(fd);
    }
    if (task_clock_fd >= 0) ::close(task_clock_fd);
  }
};

ThreadPerfState& TlsPerf() {
  thread_local ThreadPerfState state;
  return state;
}

/// Opens the full hardware group for the calling thread. Returns false
/// (with everything closed again) if any event refuses to open — partial
/// groups would silently skew the derived rates.
bool OpenHardwareGroup(ThreadPerfState* state) {
  state->group_fd = OpenPerfEvent(kHwEvents[0].type, kHwEvents[0].config,
                                  /*group_fd=*/-1, /*group_leader=*/true);
  if (state->group_fd < 0) return false;
  for (size_t i = 1; i < kHwEventCount; ++i) {
    state->sibling_fds[i - 1] =
        OpenPerfEvent(kHwEvents[i].type, kHwEvents[i].config, state->group_fd,
                      /*group_leader=*/false);
    if (state->sibling_fds[i - 1] < 0) {
      for (size_t j = 1; j < i; ++j) {
        ::close(state->sibling_fds[j - 1]);
        state->sibling_fds[j - 1] = -1;
      }
      ::close(state->group_fd);
      state->group_fd = -1;
      return false;
    }
  }
  ::ioctl(state->group_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(state->group_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

int OpenTaskClock() {
  int fd = OpenPerfEvent(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK,
                         /*group_fd=*/-1, /*group_leader=*/false);
  if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  return fd;
}

uint64_t ThreadCpuClockNs() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

PerfCapability Probe() {
  PerfCapability caps;
  const char* env = std::getenv("BOLTON_PERF");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    caps.tier = PerfTier::kClockFallback;
    caps.detail = "disabled by BOLTON_PERF=0; task clock from "
                  "CLOCK_THREAD_CPUTIME_ID";
    return caps;
  }
  ThreadPerfState probe_state;
  if (OpenHardwareGroup(&probe_state)) {
    caps.tier = PerfTier::kHardwareGroup;
    std::string names;
    for (const HwEvent& event : kHwEvents) {
      if (!names.empty()) names += ",";
      names += event.name;
    }
    caps.detail = StrFormat("hardware group [%s] + task-clock",
                            names.c_str());
    // probe_state's destructor closes the probe fds; every thread opens
    // its own group on first read.
    return caps;
  }
  const int hw_errno = errno;
  const int task_clock_fd = OpenTaskClock();
  if (task_clock_fd >= 0) {
    ::close(task_clock_fd);
    caps.tier = PerfTier::kTaskClockOnly;
    caps.detail = StrFormat(
        "hardware counters unavailable (%s; perf_event_paranoid=%d); "
        "software task-clock only",
        std::strerror(hw_errno), ReadParanoidLevel());
    return caps;
  }
  caps.tier = PerfTier::kClockFallback;
  caps.detail = StrFormat(
      "perf_event_open unavailable (%s; perf_event_paranoid=%d); task "
      "clock from CLOCK_THREAD_CPUTIME_ID",
      std::strerror(errno), ReadParanoidLevel());
  return caps;
}

/// Opens the calling thread's counters at the probed tier, degrading this
/// one thread (never the process) if its own open fails — e.g. fd
/// exhaustion late in a run.
void InitThreadPerf(ThreadPerfState* state) {
  state->initialized = true;
  const PerfTier tier = PerfCaps().tier;
  if (tier == PerfTier::kClockFallback) return;
  if (tier == PerfTier::kHardwareGroup && !OpenHardwareGroup(state)) {
    // fall through to the task-clock attempt below
  }
  state->task_clock_fd = OpenTaskClock();
}

bool ReadExactly(int fd, void* buffer, size_t size) {
  const ssize_t n = ::read(fd, buffer, size);
  return n == static_cast<ssize_t>(size);
}

/// Per-thread depth of live CounterScopes; totals accumulate only when
/// the outermost one closes.
thread_local int tls_scope_depth = 0;

}  // namespace

const PerfCapability& PerfCaps() {
  static const PerfCapability* caps = new PerfCapability(Probe());
  return *caps;
}

bool PerfCountersEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void SetPerfCountersEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool PerfHardwareAvailable() {
  return PerfCountersEnabled() &&
         PerfCaps().tier == PerfTier::kHardwareGroup &&
         !g_force_unavailable.load(std::memory_order_relaxed);
}

double PerfCounterDelta::Ipc() const {
  if (!available || cycles == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double PerfCounterDelta::CacheMissRate() const {
  if (!available || cache_references == 0) return 0.0;
  return static_cast<double>(cache_misses) /
         static_cast<double>(cache_references);
}

double PerfCounterDelta::BranchMissRate() const {
  if (!available || instructions == 0) return 0.0;
  return static_cast<double>(branch_misses) /
         static_cast<double>(instructions);
}

PerfCounterDelta& PerfCounterDelta::operator+=(const PerfCounterDelta& o) {
  available = available || o.available;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  task_clock_ns += o.task_clock_ns;
  return *this;
}

PerfCounterDelta PerfCounterDelta::operator-(
    const PerfCounterDelta& o) const {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  PerfCounterDelta out;
  out.available = available;
  out.cycles = sub(cycles, o.cycles);
  out.instructions = sub(instructions, o.instructions);
  out.cache_references = sub(cache_references, o.cache_references);
  out.cache_misses = sub(cache_misses, o.cache_misses);
  out.branch_misses = sub(branch_misses, o.branch_misses);
  out.task_clock_ns = sub(task_clock_ns, o.task_clock_ns);
  return out;
}

PerfReading ReadCurrentThreadPerf() {
  PerfReading reading;
  if (!PerfCountersEnabled()) return reading;
  reading.valid = true;
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    reading.task_clock_ns = ThreadCpuClockNs();
    return reading;
  }
  ThreadPerfState& state = TlsPerf();
  if (!state.initialized) InitThreadPerf(&state);
  if (state.group_fd >= 0) {
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in open order.
    uint64_t buffer[1 + kHwEventCount] = {0};
    if (ReadExactly(state.group_fd, buffer, sizeof(buffer)) &&
        buffer[0] == kHwEventCount) {
      reading.hardware = true;
      for (size_t i = 0; i < kHwEventCount; ++i) {
        reading.values[i] = buffer[1 + i];
      }
    }
  }
  if (state.task_clock_fd >= 0) {
    uint64_t value = 0;  // PERF_COUNT_SW_TASK_CLOCK counts nanoseconds
    if (ReadExactly(state.task_clock_fd, &value, sizeof(value))) {
      reading.task_clock_ns = value;
      return reading;
    }
  }
  reading.task_clock_ns = ThreadCpuClockNs();
  return reading;
}

PerfCounterDelta DeltaBetween(const PerfReading& start,
                              const PerfReading& end) {
  PerfCounterDelta delta;
  if (!start.valid || !end.valid) return delta;
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  delta.available = start.hardware && end.hardware;
  if (delta.available) {
    delta.cycles = sub(end.values[0], start.values[0]);
    delta.instructions = sub(end.values[1], start.values[1]);
    delta.cache_references = sub(end.values[2], start.values[2]);
    delta.cache_misses = sub(end.values[3], start.values[3]);
    delta.branch_misses = sub(end.values[4], start.values[4]);
  }
  delta.task_clock_ns = sub(end.task_clock_ns, start.task_clock_ns);
  return delta;
}

CounterScope::CounterScope(ScopedSpan* span, PerfCounterDelta* out)
    : span_(span), out_(out) {
  if (!PerfCountersEnabled()) return;
  active_ = true;
  ++tls_scope_depth;
  start_ = ReadCurrentThreadPerf();
}

CounterScope::~CounterScope() {
  if (!active_) return;
  const PerfCounterDelta delta =
      DeltaBetween(start_, ReadCurrentThreadPerf());
  --tls_scope_depth;
  if (span_ != nullptr) span_->AttachCounters(delta);
  if (out_ != nullptr) *out_ = delta;
  if (tls_scope_depth == 0) AddProcessPerfTotals(delta);
}

PerfCounterDelta ProcessPerfTotals() {
  PerfCounterDelta totals;
  totals.available =
      g_total_hw_contributions.load(std::memory_order_relaxed) > 0;
  totals.cycles = g_total_cycles.load(std::memory_order_relaxed);
  totals.instructions = g_total_instructions.load(std::memory_order_relaxed);
  totals.cache_references =
      g_total_cache_references.load(std::memory_order_relaxed);
  totals.cache_misses = g_total_cache_misses.load(std::memory_order_relaxed);
  totals.branch_misses =
      g_total_branch_misses.load(std::memory_order_relaxed);
  totals.task_clock_ns =
      g_total_task_clock_ns.load(std::memory_order_relaxed);
  return totals;
}

void AddProcessPerfTotals(const PerfCounterDelta& delta) {
  if (delta.available) {
    g_total_hw_contributions.fetch_add(1, std::memory_order_relaxed);
    g_total_cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
    g_total_instructions.fetch_add(delta.instructions,
                                   std::memory_order_relaxed);
    g_total_cache_references.fetch_add(delta.cache_references,
                                       std::memory_order_relaxed);
    g_total_cache_misses.fetch_add(delta.cache_misses,
                                   std::memory_order_relaxed);
    g_total_branch_misses.fetch_add(delta.branch_misses,
                                    std::memory_order_relaxed);
  }
  g_total_task_clock_ns.fetch_add(delta.task_clock_ns,
                                  std::memory_order_relaxed);
}

void UpdatePerfGauges() {
  if (!MetricsEnabled()) return;
  static Gauge* available =
      MetricsRegistry::Default().GetGauge("perf.available");
  static Gauge* cycles =
      MetricsRegistry::Default().GetGauge("perf.cycles_total");
  static Gauge* instructions =
      MetricsRegistry::Default().GetGauge("perf.instructions_total");
  static Gauge* ipc = MetricsRegistry::Default().GetGauge("perf.ipc");
  static Gauge* cache_miss_rate =
      MetricsRegistry::Default().GetGauge("perf.cache_miss_rate");
  static Gauge* branch_miss_rate =
      MetricsRegistry::Default().GetGauge("perf.branch_miss_rate");
  static Gauge* task_clock = MetricsRegistry::Default().GetGauge(
      "perf.task_clock_seconds_total");

  available->Set(PerfHardwareAvailable() ? 1.0 : 0.0);
  const PerfCounterDelta totals = ProcessPerfTotals();
  cycles->Set(static_cast<double>(totals.cycles));
  instructions->Set(static_cast<double>(totals.instructions));
  ipc->Set(totals.Ipc());
  cache_miss_rate->Set(totals.CacheMissRate());
  branch_miss_rate->Set(totals.BranchMissRate());
  task_clock->Set(static_cast<double>(totals.task_clock_ns) * 1e-9);
}

namespace internal {
void ForcePerfUnavailableForTest(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
}
}  // namespace internal

}  // namespace obs
}  // namespace bolton
