#include "obs/postmortem.h"

#include <execinfo.h>
#include <fcntl.h>
#include <link.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/symbolize.h"
#include "util/thread_name.h"

namespace bolton {
namespace obs {

namespace {

constexpr int kMaxFrames = 64;
constexpr int kMaxModules = 64;

/// One loaded object, captured at install time. Frames are written to the
/// raw file as (module path, pc - relocation base): the offset survives
/// ASLR, so a fresh `boltondp postmortem finalize` process of the same
/// binary can re-base and symbolize what a dead process recorded.
struct Module {
  char path[256];
  uintptr_t base;  // relocation base (dlpi_addr; 0 for non-PIE main exe)
  uintptr_t lo;    // lowest / highest mapped address, for pc matching
  uintptr_t hi;
};

Module g_modules[kMaxModules];
int g_module_count = 0;

/// All fixed-size, all set up in InstallCrashHandler — the handler itself
/// only loads and write(2)s.
char g_dir[256] = {0};
char g_raw_path[320] = {0};
std::atomic<int> g_raw_fd{-1};
std::atomic<bool> g_installed{false};
/// Set by the in-process check-failure path so the subsequent SIGABRT
/// does not also write a raw report over the finished json.
std::atomic<bool> g_fatal_handled{false};
std::atomic<int> g_in_handler{0};
FlightRecorder* g_recorder = nullptr;

int CaptureModule(struct dl_phdr_info* info, size_t, void*) {
  if (g_module_count >= kMaxModules) return 1;
  Module& m = g_modules[g_module_count];
  if (info->dlpi_name != nullptr && info->dlpi_name[0] != '\0') {
    std::snprintf(m.path, sizeof(m.path), "%s", info->dlpi_name);
  } else {
    // The main executable reports an empty name; use its real path so
    // finalize can match it by string.
    const ssize_t n =
        ::readlink("/proc/self/exe", m.path, sizeof(m.path) - 1);
    m.path[n > 0 ? n : 0] = '\0';
  }
  m.base = info->dlpi_addr;
  m.lo = UINTPTR_MAX;
  m.hi = 0;
  for (int i = 0; i < info->dlpi_phnum; ++i) {
    const auto& phdr = info->dlpi_phdr[i];
    if (phdr.p_type != PT_LOAD) continue;
    const uintptr_t lo = info->dlpi_addr + phdr.p_vaddr;
    const uintptr_t hi = lo + phdr.p_memsz;
    if (lo < m.lo) m.lo = lo;
    if (hi > m.hi) m.hi = hi;
  }
  if (m.hi > m.lo) ++g_module_count;
  return 0;
}

const Module* FindModule(uintptr_t pc) {
  for (int i = 0; i < g_module_count; ++i) {
    if (pc >= g_modules[i].lo && pc < g_modules[i].hi) return &g_modules[i];
  }
  return nullptr;
}

/// ----- async-signal-safe output primitives (mirrors flight_recorder.cc's
/// private helpers; snprintf and FILE* are off-limits here) -----

void RawWrite(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void RawWriteText(int fd, const char* text) {
  RawWrite(fd, text, std::strlen(text));
}

void RawWriteUint(int fd, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  char out[20];
  for (size_t i = 0; i < n; ++i) out[i] = digits[n - 1 - i];
  RawWrite(fd, out, n);
}

void RawWriteHex(int fd, uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  char digits[16];
  size_t n = 0;
  do {
    digits[n++] = kHex[v & 0xf];
    v >>= 4;
  } while (v != 0);
  char out[18];
  out[0] = '0';
  out[1] = 'x';
  for (size_t i = 0; i < n; ++i) out[2 + i] = digits[n - 1 - i];
  RawWrite(fd, out, 2 + n);
}

/// A token field: "" becomes "-", whitespace becomes '_'.
void RawWriteToken(int fd, const char* s) {
  if (s == nullptr || s[0] == '\0') {
    RawWriteText(fd, "-");
    return;
  }
  char buf[256];
  size_t n = 0;
  for (; s[n] != '\0' && n < sizeof(buf); ++n) {
    const char c = s[n];
    buf[n] = (c == ' ' || c == '\t' || c == '\n' || c == '\r') ? '_' : c;
  }
  RawWrite(fd, buf, n);
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    case SIGABRT:
      return "SIGABRT";
  }
  return "UNKNOWN";
}

/// VmHWM from /proc/self/status with open/read/close only.
uint64_t PeakRssBytesSignalSafe() {
  const int fd = ::open("/proc/self/status", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return 0;
  char buf[4096];
  ssize_t total = 0;
  while (total < static_cast<ssize_t>(sizeof(buf)) - 1) {
    const ssize_t n = ::read(fd, buf + total, sizeof(buf) - 1 - total);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    total += n;
  }
  ::close(fd);
  buf[total] = '\0';
  const char* key = "VmHWM:";
  for (ssize_t i = 0; i + 6 < total; ++i) {
    bool match = (i == 0 || buf[i - 1] == '\n');
    for (int k = 0; match && k < 6; ++k) match = buf[i + k] == key[k];
    if (!match) continue;
    uint64_t kb = 0;
    for (ssize_t j = i + 6; j < total && buf[j] != '\n'; ++j) {
      if (buf[j] >= '0' && buf[j] <= '9') kb = kb * 10 + (buf[j] - '0');
    }
    return kb * 1024;
  }
  return 0;
}

void RestoreAndReraise(int sig) {
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(sig, &dfl, nullptr);
  ::raise(sig);
}

void CrashSignalHandler(int sig, siginfo_t* info, void*) {
  // One postmortem per process; a second fatal signal (including one
  // raised by this very handler) goes straight to the default action.
  if (g_in_handler.exchange(1) != 0) {
    RestoreAndReraise(sig);
    return;
  }
  const int fd = g_raw_fd.load(std::memory_order_acquire);
  if (fd < 0 || g_fatal_handled.load(std::memory_order_acquire)) {
    RestoreAndReraise(sig);
    return;
  }

  RawWriteText(fd, "pmraw bolton-postmortem-raw-v1\n");
  RawWriteText(fd, "signal ");
  RawWriteUint(fd, static_cast<uint64_t>(sig));
  RawWriteText(fd, " ");
  RawWriteText(fd, SignalName(sig));
  RawWriteText(fd, "\n");
  RawWriteText(fd, "fault ");
  RawWriteHex(fd, info != nullptr
                      ? reinterpret_cast<uint64_t>(info->si_addr)
                      : 0);
  RawWriteText(fd, "\n");

  RawWriteText(fd, "crash ");
  RawWriteUint(fd, bolton::internal::LogMonotonicNanos());
  RawWriteText(fd, " ");
  RawWriteUint(fd, CurrentThreadSmallId());
  RawWriteText(fd, " ");
  RawWriteToken(fd, bolton::internal::CurrentThreadNameCStr());
  RawWriteText(fd, "\n");

  // The crashing thread's open span stack (ids + literal names, read
  // straight from its own TLS; see obs/trace.h ThreadSpanState).
  const internal::ThreadSpanState& spans = internal::ThreadState();
  const int depth = spans.depth < internal::ThreadSpanState::kMaxStack
                        ? spans.depth
                        : internal::ThreadSpanState::kMaxStack;
  for (int i = 0; i < depth; ++i) {
    if (spans.stack_names[i] == nullptr) continue;
    RawWriteText(fd, "span ");
    RawWriteUint(fd, spans.stack_ids[i]);
    RawWriteText(fd, " ");
    RawWriteToken(fd, spans.stack_names[i]);
    RawWriteText(fd, "\n");
  }

  void* pcs[kMaxFrames];
  const int n_frames = ::backtrace(pcs, kMaxFrames);
  for (int i = 0; i < n_frames; ++i) {
    const uintptr_t pc = reinterpret_cast<uintptr_t>(pcs[i]);
    const Module* module = FindModule(pc);
    RawWriteText(fd, "frame ");
    if (module != nullptr) {
      RawWriteToken(fd, module->path);
      RawWriteText(fd, " ");
      RawWriteHex(fd, pc - module->base);
    } else {
      RawWriteText(fd, "? ");
      RawWriteHex(fd, pc);
    }
    RawWriteText(fd, "\n");
  }

  RawWriteText(fd, "peakrss ");
  RawWriteUint(fd, PeakRssBytesSignalSafe());
  RawWriteText(fd, "\n");
  RawWriteText(fd, "failpoints ");
  RawWriteToken(fd, ArmedFailpointSpecCStr());
  RawWriteText(fd, "\n");

  if (g_recorder != nullptr) g_recorder->WriteRawTo(fd);
  RawWriteText(fd, "pmend\n");
  ::fsync(fd);
  RestoreAndReraise(sig);
}

void CleanExitCleanup() {
  // Clean exit: nothing crashed, so drop the empty pre-opened raw file
  // instead of leaving confusing litter next to real postmortems.
  const int fd = g_raw_fd.exchange(-1);
  if (fd < 0) return;
  struct stat st;
  const bool empty = ::fstat(fd, &st) == 0 && st.st_size == 0;
  ::close(fd);
  if (empty && g_raw_path[0] != '\0') ::unlink(g_raw_path);
}

void FatalHook(const char* message) {
  internal::WritePostmortemNow(message);
}

std::string RenderFrameJson(const PostmortemReport::Frame& f) {
  return StrFormat(
      "{\"module\":\"%s\",\"offset\":\"0x%llx\",\"pc\":\"0x%llx\","
      "\"symbol\":\"%s\",\"resolved\":%s}",
      JsonEscape(f.module).c_str(),
      static_cast<unsigned long long>(f.offset),
      static_cast<unsigned long long>(f.pc), JsonEscape(f.symbol).c_str(),
      f.resolved ? "true" : "false");
}

/// Fills the report fields that both postmortem paths share: the flight
/// recorder rings, metrics, peak RSS, and the armed failpoints.
void FillCommonState(PostmortemReport* report) {
  FlightRecorder& recorder = FlightRecorder::Default();
  recorder.SnapshotMetricsNow();
  report->recent_logs =
      recorder.RecentLogs(FlightRecorder::kLogSlots, LogLevel::kDebug);
  report->recent_spans = recorder.RecentSpans(FlightRecorder::kSpanSlots);
  report->metrics = recorder.LatestMetrics();
  report->log_ring = recorder.LogRingStats();
  report->span_ring = recorder.SpanRingStats();
  report->peak_rss_bytes = PeakRssBytesSignalSafe();
  report->failpoints = ArmedFailpointSpecCStr();
}

}  // namespace

Status InstallCrashHandler(const PostmortemOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("postmortem dir must not be empty");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(StrFormat("cannot create postmortem dir '%s'",
                                     options.dir.c_str()));
  }
  std::snprintf(g_dir, sizeof(g_dir), "%s", options.dir.c_str());
  std::snprintf(g_raw_path, sizeof(g_raw_path), "%s/postmortem.raw",
                options.dir.c_str());
  const int fd =
      ::open(g_raw_path, O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0600);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("cannot open '%s' for writing", g_raw_path));
  }
  const int old_fd = g_raw_fd.exchange(fd, std::memory_order_release);
  if (old_fd >= 0) ::close(old_fd);

  if (g_installed.exchange(true)) return Status::OK();  // dir switched

  // Everything the handler will touch gets primed now, while allocation
  // is still legal: the module table, the monotonic epochs, the flight
  // recorder singleton (whose construction takes a lock), the thread's
  // span TLS, and backtrace() itself (its first call may dlopen libgcc).
  g_module_count = 0;
  ::dl_iterate_phdr(&CaptureModule, nullptr);
  bolton::internal::LogMonotonicNanos();
  MonotonicNanos();
  g_recorder = &FlightRecorder::Default();
  internal::ThreadState();
  void* prime[4];
  ::backtrace(prime, 4);

  // Fixed size rather than SIGSTKSZ, which is no longer a compile-time
  // constant on modern glibc.
  static char alt_stack[64 * 1024];
  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof(alt_stack);
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &CrashSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  ::sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }

  bolton::internal::SetFatalHook(&FatalHook);
  std::atexit(&CleanExitCleanup);
  return Status::OK();
}

namespace internal {

void WritePostmortemNow(const char* fatal_message) {
  if (g_dir[0] == '\0') return;  // handler never installed
  if (g_fatal_handled.exchange(true)) return;

  PostmortemReport report;
  report.reason = "check_failure";
  report.fatal_message = fatal_message != nullptr ? fatal_message : "";
  report.mono_ns = bolton::internal::LogMonotonicNanos();
  report.thread_id = CurrentThreadSmallId();
  report.thread_name = bolton::internal::CurrentThreadNameCStr();

  const obs::internal::ThreadSpanState& spans = obs::internal::ThreadState();
  const int depth = spans.depth < obs::internal::ThreadSpanState::kMaxStack
                        ? spans.depth
                        : obs::internal::ThreadSpanState::kMaxStack;
  for (int i = 0; i < depth; ++i) {
    if (spans.stack_names[i] == nullptr) continue;
    report.active_spans.emplace_back(spans.stack_ids[i],
                                     spans.stack_names[i]);
  }

  // Normal context: symbolize right here, fully, in-process.
  void* pcs[kMaxFrames];
  const int n_frames = ::backtrace(pcs, kMaxFrames);
  std::vector<void*> frame_pcs(pcs, pcs + (n_frames > 0 ? n_frames : 0));
  std::map<void*, SymbolizedPc> symbols = SymbolizePcs(frame_pcs);
  for (void* pc : frame_pcs) {
    PostmortemReport::Frame frame;
    const uintptr_t addr = reinterpret_cast<uintptr_t>(pc);
    if (const Module* module = FindModule(addr)) {
      frame.module = module->path;
      frame.offset = addr - module->base;
    }
    frame.pc = addr;
    const auto it = symbols.find(pc);
    if (it != symbols.end()) {
      frame.symbol = it->second.name;
      frame.resolved = it->second.resolved;
    }
    report.frames.push_back(std::move(frame));
  }

  FillCommonState(&report);
  const std::string path = StrFormat("%s/postmortem.json", g_dir);
  // Nothing useful to do with a write failure here: the process is about
  // to abort either way.
  (void)WriteStringToFile(path, RenderPostmortemJson(report));
}

}  // namespace internal

std::string RenderPostmortemJson(const PostmortemReport& report) {
  std::string out = "{\"schema\":\"bolton-postmortem-v1\"";
  out += StrFormat(",\"reason\":\"%s\"", JsonEscape(report.reason).c_str());
  if (report.reason == "signal") {
    out += StrFormat(
        ",\"signal\":{\"number\":%d,\"name\":\"%s\",\"fault_addr\":\"%s\"}",
        report.signal_number, JsonEscape(report.signal_name).c_str(),
        JsonEscape(report.fault_addr).c_str());
  }
  if (!report.fatal_message.empty()) {
    out += StrFormat(",\"fatal_message\":\"%s\"",
                     JsonEscape(report.fatal_message).c_str());
  }
  out += StrFormat(
      ",\"crash\":{\"mono_ns\":%llu,\"thread_id\":%llu,"
      "\"thread_name\":\"%s\"}",
      static_cast<unsigned long long>(report.mono_ns),
      static_cast<unsigned long long>(report.thread_id),
      JsonEscape(report.thread_name).c_str());
  out += ",\"build\":";
  out += RenderBuildInfoJson();
  out += ",\"backtrace\":[";
  bool first = true;
  for (const PostmortemReport::Frame& frame : report.frames) {
    if (!first) out += ',';
    first = false;
    out += RenderFrameJson(frame);
  }
  out += "],\"active_spans\":[";
  first = true;
  for (const auto& [id, name] : report.active_spans) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("{\"id\":%llu,\"name\":\"%s\"}",
                     static_cast<unsigned long long>(id),
                     JsonEscape(name).c_str());
  }
  out += "],\"recent_logs\":[";
  first = true;
  for (const RecordedLogEvent& event : report.recent_logs) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedLogJson(event);
  }
  out += StrFormat(
      "],\"log_ring\":{\"capacity\":%llu,\"appended\":%llu,"
      "\"dropped\":%llu}",
      static_cast<unsigned long long>(report.log_ring.capacity),
      static_cast<unsigned long long>(report.log_ring.appended),
      static_cast<unsigned long long>(report.log_ring.dropped));
  out += ",\"recent_spans\":[";
  first = true;
  for (const RecordedSpan& span : report.recent_spans) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedSpanJson(span);
  }
  out += StrFormat(
      "],\"span_ring\":{\"capacity\":%llu,\"appended\":%llu,"
      "\"dropped\":%llu}",
      static_cast<unsigned long long>(report.span_ring.capacity),
      static_cast<unsigned long long>(report.span_ring.appended),
      static_cast<unsigned long long>(report.span_ring.dropped));
  out += ",\"metrics\":[";
  first = true;
  for (const RecordedMetric& metric : report.metrics) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedMetricJson(metric);
  }
  out += StrFormat(
      "],\"peak_rss_bytes\":%llu,\"failpoints\":\"%s\"}",
      static_cast<unsigned long long>(report.peak_rss_bytes),
      JsonEscape(report.failpoints).c_str());
  return out;
}

namespace {

/// ----- raw-file parsing (finalize path; normal context) -----

uint64_t ParseUintToken(const std::string& token) {
  uint64_t v = 0;
  size_t i = 0;
  int base = 10;
  if (token.size() > 2 && token[0] == '0' && token[1] == 'x') {
    base = 16;
    i = 2;
  }
  for (; i < token.size(); ++i) {
    const char c = token[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      break;
    }
    v = v * static_cast<uint64_t>(base) + digit;
  }
  return v;
}

std::string Untoken(const std::string& token) {
  return token == "-" ? "" : token;
}

/// Re-bases a (module, offset) frame in the current process and
/// symbolizes it. `bases` maps module path -> relocation base here.
PostmortemReport::Frame ResolveFrame(
    const std::string& module, uint64_t offset,
    const std::map<std::string, uintptr_t>& bases) {
  PostmortemReport::Frame frame;
  frame.module = module;
  frame.offset = offset;
  const auto it = bases.find(module);
  if (it == bases.end()) {
    frame.symbol = StrFormat("[%s+0x%llx]", module.c_str(),
                             static_cast<unsigned long long>(offset));
    return frame;
  }
  frame.pc = it->second + offset;
  // The crash pc is the *return address* for every non-leaf frame;
  // symbolizing it directly is close enough for a postmortem.
  const SymbolizedPc symbol =
      SymbolizePc(reinterpret_cast<void*>(frame.pc));
  frame.symbol = symbol.name;
  frame.resolved = symbol.resolved;
  return frame;
}

int CollectBase(struct dl_phdr_info* info, size_t, void* arg) {
  auto* bases = static_cast<std::map<std::string, uintptr_t>*>(arg);
  std::string path;
  if (info->dlpi_name != nullptr && info->dlpi_name[0] != '\0') {
    path = info->dlpi_name;
  } else {
    char exe[256];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) path.assign(exe, static_cast<size_t>(n));
  }
  if (!path.empty()) (*bases)[path] = info->dlpi_addr;
  return 0;
}

}  // namespace

Status FinalizePostmortem(const std::string& dir) {
  const std::string raw_path = dir + "/postmortem.raw";
  const std::string json_path = dir + "/postmortem.json";
  std::FILE* raw = std::fopen(raw_path.c_str(), "r");
  std::string content;
  if (raw != nullptr) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), raw)) > 0) {
      content.append(buf, n);
    }
    std::fclose(raw);
  }
  if (content.empty()) {
    // The in-process check-failure path renders the json directly and
    // leaves the raw file empty.
    struct stat st;
    if (::stat(json_path.c_str(), &st) == 0) return Status::OK();
    return Status::NotFound(
        StrFormat("no crash recorded in '%s'", dir.c_str()));
  }

  std::map<std::string, uintptr_t> bases;
  ::dl_iterate_phdr(&CollectBase, &bases);

  PostmortemReport report;
  report.reason = "signal";
  for (const std::string& line : StrSplit(content, '\n')) {
    if (line.empty()) continue;
    // The message part of an fllog line may contain spaces; split it off
    // at the " |" delimiter before tokenizing.
    std::string head = line;
    std::string message;
    const size_t bar = line.find(" |");
    if (bar != std::string::npos && StartsWith(line, "fllog ")) {
      head = line.substr(0, bar);
      message = line.substr(bar + 2);
    }
    const std::vector<std::string> tokens = StrSplit(head, ' ');
    if (tokens.empty()) continue;
    const std::string& tag = tokens[0];
    if (tag == "signal" && tokens.size() >= 3) {
      report.signal_number = static_cast<int>(ParseUintToken(tokens[1]));
      report.signal_name = tokens[2];
    } else if (tag == "fault" && tokens.size() >= 2) {
      report.fault_addr = tokens[1];
    } else if (tag == "crash" && tokens.size() >= 4) {
      report.mono_ns = ParseUintToken(tokens[1]);
      report.thread_id = ParseUintToken(tokens[2]);
      report.thread_name = Untoken(tokens[3]);
    } else if (tag == "span" && tokens.size() >= 3) {
      report.active_spans.emplace_back(ParseUintToken(tokens[1]),
                                       tokens[2]);
    } else if (tag == "frame" && tokens.size() >= 3) {
      if (tokens[1] == "?") {
        PostmortemReport::Frame frame;
        frame.pc = ParseUintToken(tokens[2]);
        frame.symbol = StrFormat(
            "[0x%llx]", static_cast<unsigned long long>(frame.pc));
        report.frames.push_back(std::move(frame));
      } else {
        report.frames.push_back(
            ResolveFrame(tokens[1], ParseUintToken(tokens[2]), bases));
      }
    } else if (tag == "peakrss" && tokens.size() >= 2) {
      report.peak_rss_bytes = ParseUintToken(tokens[1]);
    } else if (tag == "failpoints" && tokens.size() >= 2) {
      report.failpoints = Untoken(tokens[1]);
    } else if (tag == "flstats" && tokens.size() >= 5) {
      RingStats stats{ParseUintToken(tokens[2]), ParseUintToken(tokens[3]),
                      ParseUintToken(tokens[4])};
      if (tokens[1] == "logs") {
        report.log_ring = stats;
      } else if (tokens[1] == "spans") {
        report.span_ring = stats;
      }
    } else if (tag == "fllog" && tokens.size() >= 9) {
      RecordedLogEvent event;
      event.seq = ParseUintToken(tokens[1]);
      event.mono_ns = ParseUintToken(tokens[2]);
      if (!ParseLogLevel(tokens[3], &event.level)) {
        event.level = LogLevel::kInfo;
      }
      event.thread_id = ParseUintToken(tokens[4]);
      event.span_id = ParseUintToken(tokens[5]);
      event.line = static_cast<int>(ParseUintToken(tokens[6]));
      event.thread_name = Untoken(tokens[7]);
      event.file = Untoken(tokens[8]);
      event.message = message;
      report.recent_logs.push_back(std::move(event));
    } else if (tag == "flspan" && tokens.size() >= 9) {
      RecordedSpan span;
      span.id = ParseUintToken(tokens[1]);
      span.parent_id = ParseUintToken(tokens[2]);
      span.start_ns = ParseUintToken(tokens[3]);
      span.duration_ns = ParseUintToken(tokens[4]);
      span.count = ParseUintToken(tokens[5]);
      span.thread_id = ParseUintToken(tokens[6]);
      span.thread_name = Untoken(tokens[7]);
      span.name = Untoken(tokens[8]);
      report.recent_spans.push_back(std::move(span));
    } else if (tag == "flmetric" && tokens.size() >= 4) {
      RecordedMetric metric;
      metric.kind = tokens[1].empty() ? 'g' : tokens[1][0];
      const uint64_t bits = ParseUintToken(tokens[2]);
      if (metric.kind == 'c') {
        metric.value = static_cast<double>(bits);
      } else {
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        metric.value = v;
      }
      metric.name = Untoken(tokens[3]);
      report.metrics.push_back(std::move(metric));
    }
  }

  return internal::WriteStringToFile(json_path,
                                     RenderPostmortemJson(report));
}

}  // namespace obs
}  // namespace bolton
