#include "obs/metrics.h"

#include <cstdio>

#include "obs/export.h"
#include "obs/telemetry.h"
#include "util/strings.h"

namespace bolton {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencySecondsBuckets() {
  static const std::vector<double>* kBuckets =
      new std::vector<double>(ExponentialBuckets(1e-6, 10.0, 9));
  return *kBuckets;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.bounds = histogram->bounds();
    data.bucket_counts.resize(data.bounds.size() + 1);
    for (size_t i = 0; i <= data.bounds.size(); ++i) {
      data.bucket_counts[i] = histogram->BucketCount(i);
    }
    data.count = histogram->TotalCount();
    data.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(data));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->value_.store(0);
  for (auto& [name, gauge] : gauges_) gauge->value_.store(0.0);
  for (auto& [name, histogram] : histograms_) {
    for (size_t i = 0; i <= histogram->bounds_.size(); ++i) {
      histogram->buckets_[i].store(0);
    }
    histogram->sum_.store(0.0);
  }
}

std::string MetricsSnapshot::ToText() const { return RenderMetricsText(*this); }

std::string MetricsSnapshot::ToJsonl() const {
  return RenderMetricsJsonl(*this);
}

Status WriteMetricsText(const std::string& path) {
  return internal::WriteStringToFile(
      path, MetricsRegistry::Default().Snapshot().ToText());
}

Status WriteMetricsJsonl(const std::string& path) {
  return internal::WriteStringToFile(
      path, MetricsRegistry::Default().Snapshot().ToJsonl());
}

}  // namespace obs
}  // namespace bolton
