#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/telemetry.h"
#include "util/strings.h"

namespace bolton {
namespace obs {

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out = "# counters\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("%-40s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "# gauges\n";
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("%-40s %g\n", name.c_str(), value);
  }
  out += "# histograms\n";
  for (const MetricsSnapshot::HistogramData& h : snapshot.histograms) {
    out += StrFormat("%-40s count=%llu sum=%.9g\n", h.name.c_str(),
                     static_cast<unsigned long long>(h.count), h.sum);
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      const std::string edge =
          i < h.bounds.size() ? StrFormat("%g", h.bounds[i]) : "+inf";
      out += StrFormat("  le=%-12s %llu\n", edge.c_str(),
                       static_cast<unsigned long long>(h.bucket_counts[i]));
    }
  }
  return out;
}

std::string RenderMetricsJsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}\n",
                     JsonEscape(name).c_str(), value);
  }
  for (const MetricsSnapshot::HistogramData& h : snapshot.histograms) {
    out += StrFormat(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
        "\"sum\":%.17g,\"buckets\":[",
        JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
        h.sum);
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ",";
      const std::string edge = i < h.bounds.size()
                                   ? StrFormat("%.17g", h.bounds[i])
                                   : "\"+inf\"";
      out += StrFormat("{\"le\":%s,\"count\":%llu}", edge.c_str(),
                       static_cast<unsigned long long>(h.bucket_counts[i]));
    }
    out += "]}\n";
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += (alpha || (digit && i > 0)) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

double HistogramQuantile(const MetricsSnapshot::HistogramData& histogram,
                         double q) {
  if (histogram.count == 0 || histogram.bucket_counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(histogram.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    const uint64_t in_bucket = histogram.bucket_counts[i];
    if (in_bucket == 0) continue;
    const uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      if (i >= histogram.bounds.size()) {
        // Overflow bucket: no finite upper edge, clamp to the largest bound.
        return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
      }
      const double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
      const double upper = histogram.bounds[i];
      const double within =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", prom.c_str(),
                     prom.c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n%s %.17g\n", prom.c_str(),
                     prom.c_str(), value);
  }
  for (const MetricsSnapshot::HistogramData& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    out += StrFormat("# TYPE %s histogram\n", prom.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const std::string edge =
          i < h.bounds.size() ? StrFormat("%g", h.bounds[i]) : "+Inf";
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", prom.c_str(),
                       edge.c_str(),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_sum %.17g\n", prom.c_str(), h.sum);
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(h.count));
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"p50", 0.50},
          {"p95", 0.95},
          {"p99", 0.99}}) {
      out += StrFormat("# TYPE %s_%s gauge\n%s_%s %.17g\n", prom.c_str(),
                       suffix, prom.c_str(), suffix,
                       HistogramQuantile(h, q));
    }
  }
  return out;
}

std::string RenderLedgerEventJson(const LedgerEvent& e) {
  return StrFormat(
      "{\"seq\":%llu,\"time_ns\":%llu,\"kind\":\"%s\",\"mechanism\":\"%s\","
      "\"label\":\"%s\",\"tenant\":\"%s\",\"epsilon\":%.17g,\"delta\":%.17g,"
      "\"sensitivity\":%.17g,\"noise_scale\":%.17g,\"noise_norm\":%.17g,"
      "\"dim\":%llu,\"step\":%llu,\"shards\":%llu,"
      "\"rng_fingerprint\":%llu,\"accepted\":%s}",
      static_cast<unsigned long long>(e.seq),
      static_cast<unsigned long long>(e.time_ns), JsonEscape(e.kind).c_str(),
      JsonEscape(e.mechanism).c_str(), JsonEscape(e.label).c_str(),
      JsonEscape(e.tenant).c_str(), e.epsilon,
      e.delta, e.sensitivity, e.noise_scale, e.noise_norm,
      static_cast<unsigned long long>(e.dim),
      static_cast<unsigned long long>(e.step),
      static_cast<unsigned long long>(e.shards),
      static_cast<unsigned long long>(e.rng_fingerprint),
      e.accepted ? "true" : "false");
}

std::string RenderLedgerJsonl(const std::vector<LedgerEvent>& events) {
  std::string out;
  for (const LedgerEvent& e : events) {
    out += RenderLedgerEventJson(e);
    out += '\n';
  }
  return out;
}

LedgerTotals SummarizeLedger(const std::vector<LedgerEvent>& events) {
  LedgerTotals totals;
  totals.events = events.size();
  for (const LedgerEvent& e : events) {
    if (!e.accepted) ++totals.rejected;
    if (e.kind == "noise_draw") {
      ++totals.noise_draws;
    } else if (e.kind == "accountant_charge") {
      ++totals.charges;
      if (e.accepted) {
        totals.epsilon_charged += e.epsilon;
        totals.delta_charged += e.delta;
      }
    } else if (e.kind == "calibration") {
      ++totals.calibrations;
    }
  }
  return totals;
}

std::string RenderCollapsed(const ProfileDump& dump) {
  std::string out;
  for (const ProfileStack& stack : dump.stacks) {
    std::string line;
    for (const std::string& frame : stack.frames) {
      if (!line.empty()) line += ';';
      for (char c : frame) line += c == ';' ? ',' : c;
    }
    out += line;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(stack.count));
  }
  return out;
}

std::string RenderProfileSummaryJson(const ProfileDump& dump, size_t top_n) {
  // Per-frame self/total sample counts over the aggregated stacks.
  struct FrameAgg {
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::map<std::string, FrameAgg> frames;
  for (const ProfileStack& stack : dump.stacks) {
    std::map<std::string, bool> seen;  // count a frame once per stack
    for (const std::string& frame : stack.frames) {
      if (seen.emplace(frame, true).second) frames[frame].total += stack.count;
    }
    if (!stack.frames.empty()) frames[stack.frames.back()].self += stack.count;
  }
  std::vector<std::pair<std::string, FrameAgg>> ranked(frames.begin(),
                                                       frames.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    if (a.second.total != b.second.total) return a.second.total > b.second.total;
    return a.first < b.first;
  });
  if (ranked.size() > top_n) ranked.resize(top_n);

  const double total =
      dump.samples > 0 ? static_cast<double>(dump.samples) : 1.0;
  std::string out = StrFormat(
      "{\"schema\":\"boltondp-profile-v1\",\"hz\":%d,\"samples\":%llu,"
      "\"dropped\":%llu,\"duration_ns\":%llu,"
      "\"leaf_symbolized_pct\":%.2f,\"any_symbolized_pct\":%.2f,"
      "\"frames\":[",
      dump.hz, static_cast<unsigned long long>(dump.samples),
      static_cast<unsigned long long>(dump.dropped),
      static_cast<unsigned long long>(dump.duration_ns),
      100.0 * dump.leaf_symbolized_fraction,
      100.0 * dump.any_symbolized_fraction);
  bool first = true;
  for (const auto& [name, agg] : ranked) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"self\":%llu,\"self_pct\":%.2f,"
        "\"total\":%llu,\"total_pct\":%.2f}",
        JsonEscape(name).c_str(), static_cast<unsigned long long>(agg.self),
        100.0 * static_cast<double>(agg.self) / total,
        static_cast<unsigned long long>(agg.total),
        100.0 * static_cast<double>(agg.total) / total);
  }
  out += "]}";
  return out;
}

std::string RenderPerfCountersJson(const PerfCounterDelta& d) {
  if (!d.available) {
    return StrFormat("{\"available\":false,\"task_clock_ns\":%llu}",
                     static_cast<unsigned long long>(d.task_clock_ns));
  }
  return StrFormat(
      "{\"available\":true,\"cycles\":%llu,\"instructions\":%llu,"
      "\"cache_references\":%llu,\"cache_misses\":%llu,"
      "\"branch_misses\":%llu,\"task_clock_ns\":%llu,"
      "\"ipc\":%.4f,\"cache_miss_rate\":%.6f,\"branch_miss_rate\":%.6f}",
      static_cast<unsigned long long>(d.cycles),
      static_cast<unsigned long long>(d.instructions),
      static_cast<unsigned long long>(d.cache_references),
      static_cast<unsigned long long>(d.cache_misses),
      static_cast<unsigned long long>(d.branch_misses),
      static_cast<unsigned long long>(d.task_clock_ns), d.Ipc(),
      d.CacheMissRate(), d.BranchMissRate());
}

std::string RenderSpanJson(const SpanRecord& s) {
  std::string out = StrFormat(
      "{\"name\":\"%s\",\"id\":%llu,\"parent\":%llu,\"depth\":%d,"
      "\"start_ns\":%llu,\"dur_ns\":%llu,\"count\":%llu,\"thread\":%llu,"
      "\"thread_name\":\"%s\"",
      JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.id),
      static_cast<unsigned long long>(s.parent_id), s.depth,
      static_cast<unsigned long long>(s.start_ns),
      static_cast<unsigned long long>(s.duration_ns),
      static_cast<unsigned long long>(s.count),
      static_cast<unsigned long long>(s.thread_id),
      JsonEscape(s.thread_name).c_str());
  if (s.has_counters) {
    out += ",\"counters\":";
    out += RenderPerfCountersJson(s.counters);
  }
  out += '}';
  return out;
}

std::string RenderRecordedLogJson(const RecordedLogEvent& e) {
  const std::string thread =
      !e.thread_name.empty()
          ? e.thread_name
          : StrFormat("t%llu", static_cast<unsigned long long>(e.thread_id));
  return StrFormat(
      "{\"mono_ns\":%llu,\"level\":\"%s\",\"tid\":%llu,\"thread\":\"%s\","
      "\"file\":\"%s\",\"line\":%d,\"span\":%llu,\"msg\":\"%s\"}",
      static_cast<unsigned long long>(e.mono_ns), LogLevelTag(e.level),
      static_cast<unsigned long long>(e.thread_id),
      JsonEscape(thread).c_str(), JsonEscape(e.file).c_str(), e.line,
      static_cast<unsigned long long>(e.span_id),
      JsonEscape(e.message).c_str());
}

std::string RenderRecordedLogsJsonl(
    const std::vector<RecordedLogEvent>& events) {
  std::string out;
  for (const RecordedLogEvent& e : events) {
    out += RenderRecordedLogJson(e);
    out += '\n';
  }
  return out;
}

std::string RenderRecordedSpanJson(const RecordedSpan& s) {
  return StrFormat(
      "{\"name\":\"%s\",\"id\":%llu,\"parent\":%llu,\"start_ns\":%llu,"
      "\"dur_ns\":%llu,\"count\":%llu,\"thread\":%llu,"
      "\"thread_name\":\"%s\"}",
      JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.id),
      static_cast<unsigned long long>(s.parent_id),
      static_cast<unsigned long long>(s.start_ns),
      static_cast<unsigned long long>(s.duration_ns),
      static_cast<unsigned long long>(s.count),
      static_cast<unsigned long long>(s.thread_id),
      JsonEscape(s.thread_name).c_str());
}

std::string RenderRecordedMetricJson(const RecordedMetric& m) {
  return StrFormat("{\"name\":\"%s\",\"kind\":\"%c\",\"value\":%.17g}",
                   JsonEscape(m.name).c_str(), m.kind, m.value);
}

std::string RenderFlightRecorderJson(const FlightRecorder& recorder) {
  const RingStats logs = recorder.LogRingStats();
  const RingStats spans = recorder.SpanRingStats();
  std::string out = StrFormat(
      "{\"schema\":\"bolton-flightrecorder-v1\","
      "\"log_ring\":{\"capacity\":%llu,\"appended\":%llu,\"dropped\":%llu},"
      "\"span_ring\":{\"capacity\":%llu,\"appended\":%llu,\"dropped\":%llu},"
      "\"metrics_mono_ns\":%llu",
      static_cast<unsigned long long>(logs.capacity),
      static_cast<unsigned long long>(logs.appended),
      static_cast<unsigned long long>(logs.dropped),
      static_cast<unsigned long long>(spans.capacity),
      static_cast<unsigned long long>(spans.appended),
      static_cast<unsigned long long>(spans.dropped),
      static_cast<unsigned long long>(recorder.LatestMetricsTimestampNs()));
  out += ",\"recent_logs\":[";
  bool first = true;
  for (const RecordedLogEvent& e :
       recorder.RecentLogs(FlightRecorder::kLogSlots, LogLevel::kDebug)) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedLogJson(e);
  }
  out += "],\"recent_spans\":[";
  first = true;
  for (const RecordedSpan& s :
       recorder.RecentSpans(FlightRecorder::kSpanSlots)) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedSpanJson(s);
  }
  out += "],\"metrics\":[";
  first = true;
  for (const RecordedMetric& m : recorder.LatestMetrics()) {
    if (!first) out += ',';
    first = false;
    out += RenderRecordedMetricJson(m);
  }
  out += "]}";
  return out;
}

std::string RenderSpansJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& s : spans) {
    out += RenderSpanJson(s);
    out += '\n';
  }
  return out;
}

std::string RenderChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  bool first = true;
  auto append = [&out, &first](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  append(
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"boltondp\"}}");
  // One thread_name metadata event per distinct (tid, name) pair, in first-
  // seen order: a pool worker legitimately carries several names over its
  // lifetime (its own bolton-pool-N plus one psgd-shard-N per slice it ran),
  // and every name must be discoverable in the trace. Viewers that keep one
  // label per track use the last metadata event; the span data is keyed by
  // tid either way.
  std::set<std::pair<uint64_t, std::string>> seen_names;
  for (const SpanRecord& s : spans) {
    const std::string name = s.thread_name.empty() ? "thread" : s.thread_name;
    if (!seen_names.insert({s.thread_id, name}).second) continue;
    append(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%llu,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        static_cast<unsigned long long>(s.thread_id),
        JsonEscape(name).c_str()));
  }
  for (const SpanRecord& s : spans) {
    std::string event = StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"name\":\"%s\","
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"count\":%llu",
        static_cast<unsigned long long>(s.thread_id),
        JsonEscape(s.name).c_str(),
        static_cast<double>(s.start_ns) / 1000.0,
        static_cast<double>(s.duration_ns) / 1000.0,
        static_cast<unsigned long long>(s.count));
    if (s.has_counters) {
      event += ",\"counters\":";
      event += RenderPerfCountersJson(s.counters);
    }
    event += "}}";
    append(event);
  }
  out += "]\n";
  return out;
}

}  // namespace obs
}  // namespace bolton
