#ifndef BOLTON_OBS_PERF_COUNTERS_H_
#define BOLTON_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace bolton {
namespace obs {

class ScopedSpan;

/// Hardware performance-counter telemetry over perf_event_open(2).
///
/// Each thread lazily opens one per-thread counter group (leader = CPU
/// cycles; siblings = instructions, cache-references, cache-misses,
/// branch-misses; read atomically via PERF_FORMAT_GROUP) plus a separate
/// PERF_COUNT_SW_TASK_CLOCK event. A CounterScope snapshots the calling
/// thread's counters at construction and attaches the delta to a trace
/// span at destruction, so the span tree answers not just "where did the
/// wall time go" but "was that phase memory-bound (cache misses),
/// dispatch-bound (low IPC), or compute-bound".
///
/// Degradation is graceful and observable (DESIGN.md §11 has the matrix):
///  * kHardwareGroup — the full group opened; every field is real.
///  * kTaskClockOnly — the PMU is unavailable (perf_event_paranoid,
///    containers without a virtualized PMU) but the software task-clock
///    event works; deltas carry task_clock_ns only, available = false.
///  * kClockFallback — perf_event_open itself is unusable (seccomp,
///    paranoid >= 3); task_clock_ns falls back to
///    CLOCK_THREAD_CPUTIME_ID, which every Linux provides.
/// The one-time capability probe result is exported as the
/// `perf.available` gauge (1 only at kHardwareGroup) so a counter-less
/// environment is visible in every metrics dump rather than silently
/// reporting zeros.
///
/// Like the other telemetry pillars this one is off by default; when
/// disabled a CounterScope is a relaxed load plus a branch.

enum class PerfTier {
  kHardwareGroup,  // full hardware group + task-clock
  kTaskClockOnly,  // software task-clock perf event only
  kClockFallback,  // no perf_event_open; CLOCK_THREAD_CPUTIME_ID
};

struct PerfCapability {
  PerfTier tier = PerfTier::kClockFallback;
  /// Human-readable probe outcome: the event list on success, the failing
  /// errno and the perf_event_paranoid value on degradation.
  std::string detail;
};

/// One-time process-wide capability probe (first call probes, later calls
/// return the cached result). Honors BOLTON_PERF=0, which forces
/// kClockFallback without touching the syscall.
const PerfCapability& PerfCaps();

/// Kill switch for the counter pillar. Off by default.
bool PerfCountersEnabled();
void SetPerfCountersEnabled(bool enabled);

/// True when enabled, the probe found a full hardware group, and the
/// test-only force-unavailable override is not set — i.e. hardware fields
/// in new deltas will be real. Drives the perf.available gauge.
bool PerfHardwareAvailable();

/// Counter deltas over one measured interval. task_clock_ns is valid on
/// every tier; the five hardware fields are valid only when `available`.
struct PerfCounterDelta {
  bool available = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_references = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;

  /// Instructions per cycle; 0 when unavailable or no cycles elapsed.
  double Ipc() const;
  /// cache_misses / cache_references in [0, 1]; 0 when no references.
  double CacheMissRate() const;
  /// branch_misses / instructions; 0 when no instructions.
  double BranchMissRate() const;

  PerfCounterDelta& operator+=(const PerfCounterDelta& other);
  PerfCounterDelta operator-(const PerfCounterDelta& other) const;
};

/// Raw per-thread counter totals; only meaningful as input to
/// DeltaBetween. Reading lazily opens the calling thread's counters at
/// the probed tier (the fds close when the thread exits).
struct PerfReading {
  bool valid = false;     // pillar was enabled when read
  bool hardware = false;  // the five hardware values are real
  uint64_t values[5] = {0, 0, 0, 0, 0};  // cycles .. branch_misses
  uint64_t task_clock_ns = 0;
};

PerfReading ReadCurrentThreadPerf();
PerfCounterDelta DeltaBetween(const PerfReading& start,
                              const PerfReading& end);

/// RAII counter interval for the enclosing scope, on the calling thread.
///
/// At destruction the delta is (a) attached to `span` (visible in JSONL
/// and Chrome-trace exports), (b) copied to `out` when non-null (the
/// sharded executor's per-worker accounting), and (c) — only when this is
/// the thread's OUTERMOST live CounterScope — added to the process-wide
/// totals behind ProcessPerfTotals(), so nested scopes (solver.run >
/// psgd.pass) never double-count a cycle.
class CounterScope {
 public:
  explicit CounterScope(ScopedSpan* span = nullptr,
                        PerfCounterDelta* out = nullptr);
  ~CounterScope();

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  ScopedSpan* span_;
  PerfCounterDelta* out_;
  bool active_ = false;
  PerfReading start_;
};

/// Process-wide accumulated counters: the sum over every thread's
/// outermost CounterScopes (plus explicit AddProcessPerfTotals calls).
/// `available` is true once any contribution carried hardware counts.
PerfCounterDelta ProcessPerfTotals();
void AddProcessPerfTotals(const PerfCounterDelta& delta);

/// Refreshes the derived perf gauges in the default metrics registry:
/// perf.available plus perf.cycles_total / perf.instructions_total /
/// perf.ipc / perf.cache_miss_rate / perf.branch_miss_rate /
/// perf.task_clock_seconds_total from the process totals. Polled on read
/// next to UpdateProcessMemoryGauges (HTTP /metrics, --metrics dumps).
void UpdatePerfGauges();

namespace internal {
/// Test hook: while set, every reading takes the kClockFallback path and
/// PerfHardwareAvailable() is false, regardless of the real probe — the
/// CI-portable way to exercise the task-clock-only degradation.
void ForcePerfUnavailableForTest(bool force);
}  // namespace internal

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_PERF_COUNTERS_H_
