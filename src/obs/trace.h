#ifndef BOLTON_OBS_TRACE_H_
#define BOLTON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/telemetry.h"
#include "util/status.h"

namespace bolton {
namespace obs {

/// Trace spans: RAII scoped timers with parent/child nesting.
///
/// A ScopedSpan records one timed interval; spans opened while another span
/// is live on the same thread become its children, so a run produces a tree
/// (engine.run → engine.epoch → engine.scan → …). Hot inner phases
/// (per-batch gradient/projection/noise work) are aggregated through
/// PhaseAccumulator instead of emitting one span per batch.
///
/// Off by default; a disabled span construction is a relaxed load + branch.

/// One finished (or aggregated) timed interval.
struct SpanRecord {
  std::string name;
  uint64_t id = 0;         // unique per process, 1-based
  uint64_t parent_id = 0;  // 0 = root
  int depth = 0;
  uint64_t start_ns = 0;  // MonotonicNanos at open (flush time for phases)
  uint64_t duration_ns = 0;
  uint64_t count = 1;  // intervals aggregated into this record
  uint64_t thread_id = 0;
  /// Human-readable name of the recording thread ("main", "psgd-shard-3";
  /// see SetCurrentThreadName in obs/telemetry.h) so JSONL and
  /// Chrome-trace output read without a tid lookup table.
  std::string thread_name;
  /// Hardware-counter delta over the span, when a CounterScope was
  /// attached (obs/perf_counters.h); has_counters gates the export.
  bool has_counters = false;
  PerfCounterDelta counters;
};

/// Collects finished spans; thread-safe appends, JSONL export.
class TraceRecorder {
 public:
  static TraceRecorder& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Record(SpanRecord record);

  std::vector<SpanRecord> Snapshot() const;
  size_t size() const;
  void Clear();

  /// One JSON object per span, in completion order.
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

namespace internal {
/// Per-thread innermost-open-span bookkeeping for parent/child linking,
/// plus a fixed-capacity mirror of the open-span stack for the crash
/// handler: the names are string literals and the arrays are plain
/// thread-local storage, so the handler can walk its own thread's stack
/// with async-signal-safe loads (spans nested deeper than kMaxStack are
/// timed normally but omitted from the mirror).
struct ThreadSpanState {
  static constexpr int kMaxStack = 16;
  uint64_t current_id = 0;
  int depth = 0;
  uint64_t stack_ids[kMaxStack] = {0};
  const char* stack_names[kMaxStack] = {nullptr};
};
ThreadSpanState& ThreadState();

/// The calling thread's innermost open span id (0 when none); installed
/// into the logger as its span-id provider so every LogEvent carries it.
uint64_t CurrentSpanIdForLog();
}  // namespace internal

/// Times the enclosing scope. `name` must outlive the span (string
/// literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 when tracing is disabled.
  uint64_t id() const { return id_; }

  /// Attaches a perf-counter delta (normally via CounterScope, whose
  /// destructor runs before the span's) to the record this span will
  /// emit. A no-op on an inactive (tracing-disabled) span.
  void AttachCounters(const PerfCounterDelta& delta) {
    if (!active_) return;
    counters_ = delta;
    has_counters_ = true;
  }

 private:
  const char* name_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ = 0;
  int depth_ = 0;
  bool active_ = false;
  bool has_counters_ = false;
  PerfCounterDelta counters_;
};

/// Accumulates many short same-named intervals (e.g. the gradient phase of
/// every batch in a pass) into one aggregated span, emitted on Flush() or
/// destruction as a child of the thread's current span. Single-thread use.
class PhaseAccumulator {
 public:
  explicit PhaseAccumulator(const char* name) : name_(name) {}
  ~PhaseAccumulator() { Flush(); }

  PhaseAccumulator(const PhaseAccumulator&) = delete;
  PhaseAccumulator& operator=(const PhaseAccumulator&) = delete;

  void Add(uint64_t ns) {
    total_ns_ += ns;
    ++count_;
  }

  /// Emits the aggregate (if any intervals were recorded) and resets.
  void Flush();

 private:
  const char* name_;
  uint64_t total_ns_ = 0;
  uint64_t count_ = 0;
};

/// Times one interval into a PhaseAccumulator; a no-op (branch on a relaxed
/// atomic) while tracing is disabled.
class PhaseTimer {
 public:
  explicit PhaseTimer(PhaseAccumulator* accumulator)
      : accumulator_(TraceRecorder::Default().enabled() ? accumulator
                                                        : nullptr),
        start_(accumulator_ != nullptr ? MonotonicNanos() : 0) {}
  ~PhaseTimer() {
    if (accumulator_ != nullptr) accumulator_->Add(MonotonicNanos() - start_);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseAccumulator* accumulator_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_TRACE_H_
