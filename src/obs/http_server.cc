#include "obs/http_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/net.h"
#include "util/strings.h"
#include "util/thread_name.h"

namespace bolton {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;

std::string StatusLine(int http_status) {
  switch (http_status) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 400:
      return "HTTP/1.0 400 Bad Request";
    case 404:
      return "HTTP/1.0 404 Not Found";
    case 405:
      return "HTTP/1.0 405 Method Not Allowed";
    case 408:
      return "HTTP/1.0 408 Request Timeout";
    case 413:
      return "HTTP/1.0 413 Payload Too Large";
    case 429:
      return "HTTP/1.0 429 Too Many Requests";
    case 500:
      return "HTTP/1.0 500 Internal Server Error";
    case 503:
      return "HTTP/1.0 503 Service Unavailable";
    default:
      return StrFormat("HTTP/1.0 %d Error", http_status);
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = StatusLine(response.status);
  out += StrFormat("\r\nContent-Type: %s\r\nContent-Length: %zu",
                   response.content_type.c_str(), response.body.size());
  for (const auto& header : response.headers) {
    out += StrFormat("\r\n%s: %s", header.first.c_str(),
                     header.second.c_str());
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

/// "/ledger?tail=25" -> path "/ledger", query "tail=25".
void SplitTarget(const std::string& target, std::string* path,
                 std::string* query) {
  const size_t mark = target.find('?');
  if (mark == std::string::npos) {
    *path = target;
    query->clear();
  } else {
    *path = target.substr(0, mark);
    *query = target.substr(mark + 1);
  }
}

/// Case-insensitive "Content-Length" value from a raw header block, or -1
/// when absent, or an error when present but malformed.
Result<int64_t> ContentLengthOf(const std::string& head) {
  for (const std::string& line : StrSplit(head, '\n')) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (name != "content-length") continue;
    const std::string value(StripWhitespace(line.substr(colon + 1)));
    auto parsed = ParseInt(value);
    if (!parsed.ok() || parsed.value() < 0) {
      return Status::InvalidArgument(
          StrFormat("bad Content-Length '%s'", value.c_str()));
    }
    return parsed.value();
  }
  return static_cast<int64_t>(-1);
}

/// Value of `key` in an "a=1&b=2" query string, or `fallback` when the key
/// is absent. A key that IS present but malformed (non-numeric, junk) is an
/// InvalidArgument — handlers answer 400 instead of silently defaulting.
Result<int64_t> QueryIntParam(const std::string& query, const std::string& key,
                              int64_t fallback) {
  for (const std::string& pair : StrSplit(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) != key) continue;
    auto parsed = ParseInt(pair.substr(eq + 1));
    if (!parsed.ok()) {
      return Status::InvalidArgument(StrFormat(
          "query parameter '%s' must be an integer, got '%s'", key.c_str(),
          pair.substr(eq + 1).c_str()));
    }
    return parsed.value();
  }
  return fallback;
}

/// Value of `key` in an "a=b&c=d" query string, or `fallback`.
std::string QueryStringParam(const std::string& query, const std::string& key,
                             const std::string& fallback) {
  for (const std::string& pair : StrSplit(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) != key) continue;
    return pair.substr(eq + 1);
  }
  return fallback;
}

constexpr int64_t kMaxProfileSeconds = 60;

/// GET /profile?seconds=N&hz=H&format=collapsed|json&top=K
///
/// seconds > 0: run the sampling profiler for that long (capped at
/// kMaxProfileSeconds) and answer with the dump — the request blocks for
/// the duration, which is fine since profiling IS the work the caller
/// asked for. seconds = 0: snapshot a profiler some other surface (e.g.
/// `train --profile-out`) already started, without stopping it. 503 when a
/// timed request races a profiling session already in flight — there is
/// one global profiler.
std::string HandleProfile(const std::string& query,
                          const std::atomic<bool>& server_stop,
                          int* http_status, std::string* content_type) {
  auto seconds = QueryIntParam(query, "seconds", 2);
  auto hz = QueryIntParam(query, "hz", 97);
  auto top = QueryIntParam(query, "top", 30);
  if (!seconds.ok() || seconds.value() < 0 ||
      seconds.value() > kMaxProfileSeconds) {
    *http_status = 400;
    return StrFormat("seconds must be an integer in [0, %lld]\n",
                     static_cast<long long>(kMaxProfileSeconds));
  }
  if (!hz.ok() || hz.value() < 1 || hz.value() > 1000) {
    *http_status = 400;
    return "hz must be an integer in [1, 1000]\n";
  }
  if (!top.ok() || top.value() < 1) {
    *http_status = 400;
    return "top must be a positive integer\n";
  }
  const std::string format = QueryStringParam(query, "format", "collapsed");
  if (format != "collapsed" && format != "json") {
    *http_status = 400;
    return "format must be 'collapsed' or 'json'\n";
  }

  Profiler& profiler = Profiler::Default();
  ProfileDump dump;
  if (seconds.value() == 0) {
    // Live snapshot of an externally managed session.
    if (!profiler.running()) {
      *http_status = 400;
      return "seconds=0 snapshots a running profiler, but none is running\n";
    }
    dump = profiler.Dump();
  } else {
    ProfilerOptions options;
    options.hz = static_cast<int>(hz.value());
    Status started = profiler.Start(options);
    if (!started.ok()) {
      *http_status = 503;
      return StrFormat("profiler busy: %s\n",
                       started.message().c_str());
    }
    // Sleep in short slices so server Stop() aborts the session promptly
    // instead of holding shutdown for the full window.
    const uint64_t deadline_ns =
        MonotonicNanos() +
        static_cast<uint64_t>(seconds.value()) * 1000000000ull;
    while (MonotonicNanos() < deadline_ns &&
           !server_stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    profiler.Stop();
    dump = profiler.Dump();
  }

  if (format == "json") {
    *content_type = "application/json";
    return RenderProfileSummaryJson(dump, static_cast<size_t>(top.value()));
  }
  *content_type = "text/plain; charset=utf-8";
  return RenderCollapsed(dump);
}

}  // namespace

Result<std::unique_ptr<ObsServer>> ObsServer::Start(
    const ObsServerOptions& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument(
        StrFormat("obs server port out of range: %d", options.port));
  }
  if (options.io_timeout_ms <= 0) {
    return Status::InvalidArgument(
        StrFormat("obs server io timeout must be > 0 ms, got %d",
                  options.io_timeout_ms));
  }
  if (options.handler_threads < 1) {
    return Status::InvalidArgument("obs server needs >= 1 handler thread");
  }
  if (options.max_pending < 1) {
    return Status::InvalidArgument("obs server pending queue must hold >= 1");
  }
  std::unique_ptr<ObsServer> server(new ObsServer());
  server->options_ = options;
  BOLTON_ASSIGN_OR_RETURN(
      server->listen_fd_,
      net::ListenTcp(static_cast<uint16_t>(options.port)));
  BOLTON_ASSIGN_OR_RETURN(server->port_, net::LocalPort(server->listen_fd_));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    net::CloseFd(server->listen_fd_);
    return net::ErrnoStatus("pipe");
  }
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  server->start_ns_ = MonotonicNanos();
  server->handler_threads_.reserve(options.handler_threads);
  for (size_t i = 0; i < options.handler_threads; ++i) {
    server->handler_threads_.emplace_back(&ObsServer::HandlerLoop,
                                          server.get());
  }
  server->accept_thread_ = std::thread(&ObsServer::AcceptLoop, server.get());
  return server;
}

Result<std::unique_ptr<ObsServer>> ObsServer::Start(int port,
                                                    int io_timeout_ms) {
  ObsServerOptions options;
  options.port = port;
  options.io_timeout_ms = io_timeout_ms;
  return Start(options);
}

ObsServer::~ObsServer() { Stop(); }

void ObsServer::RegisterHandler(const std::string& method,
                                const std::string& path,
                                HttpHandler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path][method] = std::move(handler);
}

void ObsServer::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& t : handler_threads_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  // Wake the poll loop so the accept thread notices stop_ immediately.
  const char byte = 'q';
  (void)!::write(wake_write_fd_, &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Handler threads drain whatever was already accepted, then exit.
  queue_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  net::CloseFd(listen_fd_);
  net::CloseFd(wake_read_fd_);
  net::CloseFd(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

bool ObsServer::WaitForQuit(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(quit_mu_);
  quit_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return quit_requested(); });
  return quit_requested();
}

void ObsServer::AcceptLoop() {
  SetCurrentThreadName("http-accept");
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.max_pending) {
        pending_.push_back(conn);
        queue_cv_.notify_one();
        continue;
      }
    }
    // Queue full: shed on the accept thread with a canned refusal. Fast,
    // bounded by the io timeout, and it keeps memory flat under overload.
    ShedConnection(conn);
  }
}

void ObsServer::ShedConnection(int fd) {
  shed_count_.fetch_add(1, std::memory_order_relaxed);
  static Counter* shed_total =
      MetricsRegistry::Default().GetCounter("http.shed_total");
  shed_total->Increment();
  HttpResponse response;
  response.status = 503;
  response.content_type = "application/json";
  response.body = StrFormat(
      "{\"error\":\"overloaded\",\"detail\":\"pending queue full "
      "(%zu)\"}\n", options_.max_pending);
  response.headers.emplace_back(
      "Retry-After",
      StrFormat("%llu", static_cast<unsigned long long>(
                            options_.retry_after_seconds)));
  const std::string wire = RenderResponse(response);
  (void)net::SendAll(fd, wire.data(), wire.size(), options_.io_timeout_ms);
  ::shutdown(fd, SHUT_WR);
  (void)net::RecvAll(fd, kMaxRequestBytes, options_.io_timeout_ms);
  net::CloseFd(fd);
}

void ObsServer::HandlerLoop() {
  SetCurrentThreadName("http-handler");
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stop_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) {
        // stop_ set and nothing left to drain.
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
    net::CloseFd(fd);
  }
}

void ObsServer::HandleConnection(int fd) {
  const int io_timeout_ms = options_.io_timeout_ms;
  // Per-connection read deadline: a silent or slow-loris client is dropped
  // after io_timeout_ms instead of wedging a handler thread for good.
  auto head = net::RecvHttpHead(fd, kMaxRequestBytes, io_timeout_ms);
  if (!head.ok()) return;  // timeout / reset: nothing sensible to answer
  const std::string& text = head.value();

  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  const size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Request head hit the size cap (or the client half-closed) without a
    // terminating blank line: reject, don't guess.
    response.status = 400;
    response.body =
        StrFormat("request head exceeds %zu bytes or is unterminated\n",
                  kMaxRequestBytes);
  } else {
    // Request line: METHOD SP TARGET SP VERSION.
    const size_t line_end = text.find("\r\n");
    const std::string line = text.substr(0, line_end);
    std::vector<std::string> parts = StrSplit(line, ' ');
    HttpRequest request;
    request.method = parts.size() > 0 ? parts[0] : "";
    const std::string target = parts.size() > 1 ? parts[1] : "/";
    SplitTarget(target, &request.path, &request.query);

    auto content_length = ContentLengthOf(text.substr(0, head_end));
    if (!content_length.ok()) {
      response.status = 400;
      response.body = content_length.status().message() + "\n";
    } else if (content_length.value() >
               static_cast<int64_t>(options_.max_body_bytes)) {
      response.status = 413;
      response.body = StrFormat("request body exceeds %zu bytes\n",
                                options_.max_body_bytes);
    } else {
      bool body_ok = true;
      if (content_length.value() > 0) {
        // RecvHttpHead may have read a prefix of the body past the blank
        // line; take it, then read exactly the rest.
        request.body = text.substr(head_end + 4);
        const size_t want = static_cast<size_t>(content_length.value());
        if (request.body.size() > want) {
          request.body.resize(want);
        } else if (request.body.size() < want) {
          Status rest = net::RecvExact(fd, want - request.body.size(),
                                       io_timeout_ms, &request.body);
          if (!rest.ok()) body_ok = false;  // truncated: drop, don't guess
        }
      }
      if (body_ok) response = Dispatch(request);
      else return;
    }
  }

  const std::string wire = RenderResponse(response);
  // Write deadline: a client that stops reading cannot park us in send().
  (void)net::SendAll(fd, wire.data(), wire.size(), io_timeout_ms);
  ::shutdown(fd, SHUT_WR);
  // Drain whatever the client still sends so its write path never sees a
  // reset before it reads our response — but bounded: at most the request
  // cap, within the same deadline.
  (void)net::RecvAll(fd, kMaxRequestBytes, io_timeout_ms);
}

HttpResponse ObsServer::Dispatch(const HttpRequest& request) {
  // A scrape loop hitting every endpoint once a second would otherwise
  // bury the training output.
  const uint64_t request_number =
      request_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  BOLTON_LOG_EVERY_N(kInfo, 100)
      << "obs server request #" << request_number << ": " << request.method
      << " " << request.path;

  // Registered routes take precedence: the serve daemon owns its /v1
  // namespace outright.
  {
    HttpHandler handler;
    bool path_known = false;
    std::string allow;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      auto by_path = handlers_.find(request.path);
      if (by_path != handlers_.end()) {
        path_known = true;
        for (const auto& entry : by_path->second) {
          if (!allow.empty()) allow += ", ";
          allow += entry.first;
        }
        auto by_method = by_path->second.find(request.method);
        if (by_method != by_path->second.end()) handler = by_method->second;
      }
    }
    if (handler) return handler(request);
    if (path_known) {
      HttpResponse response;
      response.status = 405;
      response.content_type = "text/plain; charset=utf-8";
      response.body =
          StrFormat("method %s not allowed for %s (allow: %s)\n",
                    request.method.c_str(), request.path.c_str(),
                    allow.c_str());
      response.headers.emplace_back("Allow", allow);
      return response;
    }
  }

  HttpResponse response;
  response.content_type = "text/plain; charset=utf-8";
  if (request.method != "GET") {
    response.status = 405;
    response.body = "only GET is supported on built-in endpoints\n";
    response.headers.emplace_back("Allow", "GET");
    return response;
  }
  response.body = HandleBuiltin(request.path, request.query, &response.status,
                                &response.content_type);
  return response;
}

std::string ObsServer::HandleBuiltin(const std::string& path,
                                     const std::string& query,
                                     int* http_status,
                                     std::string* content_type) {
  if (path == "/metrics") {
    // Prometheus scrapers key on this exact version tag. Memory and perf
    // gauges are polled on read: every scrape sees current values, not a
    // stale sample.
    UpdateProcessMemoryGauges();
    UpdatePerfGauges();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return RenderPrometheus(MetricsRegistry::Default().Snapshot());
  }
  if (path == "/healthz") {
    *content_type = "application/json";
    const LedgerTotals totals =
        SummarizeLedger(PrivacyLedger::Default().Snapshot());
    return StrFormat(
        "{\"status\":\"ok\",\"uptime_ns\":%llu,"
        "\"metrics_enabled\":%s,\"trace_enabled\":%s,"
        "\"ledger_enabled\":%s,\"privacy_spend\":{"
        "\"events\":%llu,\"noise_draws\":%llu,\"charges\":%llu,"
        "\"rejected\":%llu,\"calibrations\":%llu,"
        "\"epsilon_charged\":%.17g,\"delta_charged\":%.17g}}\n",
        static_cast<unsigned long long>(MonotonicNanos() - start_ns_),
        MetricsEnabled() ? "true" : "false",
        TraceRecorder::Default().enabled() ? "true" : "false",
        PrivacyLedger::Default().enabled() ? "true" : "false",
        static_cast<unsigned long long>(totals.events),
        static_cast<unsigned long long>(totals.noise_draws),
        static_cast<unsigned long long>(totals.charges),
        static_cast<unsigned long long>(totals.rejected),
        static_cast<unsigned long long>(totals.calibrations),
        totals.epsilon_charged, totals.delta_charged);
  }
  if (path == "/ledger") {
    auto tail_param = QueryIntParam(query, "tail", 100);
    if (!tail_param.ok() || tail_param.value() < 0) {
      *http_status = 400;
      return "tail must be a non-negative integer\n";
    }
    const int64_t tail = tail_param.value();
    *content_type = "application/jsonl";
    std::vector<LedgerEvent> events = PrivacyLedger::Default().Snapshot();
    if (tail > 0 && static_cast<size_t>(tail) < events.size()) {
      events.erase(events.begin(),
                   events.end() - static_cast<size_t>(tail));
    }
    return RenderLedgerJsonl(events);
  }
  if (path == "/spans") {
    const std::string format = QueryStringParam(query, "format", "jsonl");
    if (format == "chrome") {
      *content_type = "application/json";
      return RenderChromeTrace(TraceRecorder::Default().Snapshot());
    }
    if (format != "jsonl") {
      *http_status = 400;
      return "format must be 'jsonl' or 'chrome'\n";
    }
    *content_type = "application/jsonl";
    return RenderSpansJsonl(TraceRecorder::Default().Snapshot());
  }
  if (path == "/logz") {
    auto tail_param = QueryIntParam(query, "tail", 100);
    if (!tail_param.ok() || tail_param.value() < 0) {
      *http_status = 400;
      return "tail must be a non-negative integer\n";
    }
    LogLevel min_level = LogLevel::kDebug;
    const std::string level_text = QueryStringParam(query, "level", "");
    if (!level_text.empty() && !ParseLogLevel(level_text, &min_level)) {
      *http_status = 400;
      return "level must be one of D/I/W/E (or debug/info/warning/error)\n";
    }
    const size_t tail = tail_param.value() == 0
                            ? FlightRecorder::kLogSlots
                            : static_cast<size_t>(tail_param.value());
    *content_type = "application/jsonl";
    return RenderRecordedLogsJsonl(
        FlightRecorder::Default().RecentLogs(tail, min_level));
  }
  if (path == "/flightrecorder") {
    // Refresh the snapshot so the payload's metrics are current, not up
    // to a second stale.
    FlightRecorder::Default().SnapshotMetricsNow();
    *content_type = "application/json";
    return RenderFlightRecorderJson(FlightRecorder::Default());
  }
  if (path == "/buildz") {
    *content_type = "application/json";
    return RenderBuildInfoJson() + "\n";
  }
  if (path == "/profile") {
    return HandleProfile(query, stop_, http_status, content_type);
  }
  if (path == "/quitquitquit") {
    {
      std::lock_guard<std::mutex> lock(quit_mu_);
      quit_.store(true, std::memory_order_release);
    }
    quit_cv_.notify_all();
    return "quitting\n";
  }
  *http_status = 404;
  return StrFormat(
      "no handler for '%s'; try /metrics /healthz /ledger /spans /logz "
      "/flightrecorder /buildz /profile\n",
      path.c_str());
}

namespace {
std::mutex g_default_server_mu;
std::unique_ptr<ObsServer>& DefaultServerSlot() {
  static std::unique_ptr<ObsServer>* slot =
      new std::unique_ptr<ObsServer>();
  return *slot;
}
}  // namespace

Status StartDefaultObsServer(int port) {
  std::lock_guard<std::mutex> lock(g_default_server_mu);
  std::unique_ptr<ObsServer>& slot = DefaultServerSlot();
  if (slot != nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "obs server already running on port %d", slot->port()));
  }
  BOLTON_ASSIGN_OR_RETURN(slot, ObsServer::Start(port));
  return Status::OK();
}

ObsServer* DefaultObsServer() {
  std::lock_guard<std::mutex> lock(g_default_server_mu);
  return DefaultServerSlot().get();
}

void StopDefaultObsServer() {
  std::lock_guard<std::mutex> lock(g_default_server_mu);
  DefaultServerSlot().reset();
}

}  // namespace obs
}  // namespace bolton
