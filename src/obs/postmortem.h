#ifndef BOLTON_OBS_POSTMORTEM_H_
#define BOLTON_OBS_POSTMORTEM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/status.h"

namespace bolton {
namespace obs {

/// Crash postmortems: when the process dies on a fatal signal or a failed
/// BOLTON_CHECK, leave behind a `bolton-postmortem-v1` JSON report with a
/// symbolized backtrace, the flight recorder's recent logs/spans/metrics,
/// the crashing thread's open span stack, peak RSS, and the armed
/// failpoint configuration — enough to start debugging a dead training
/// run without reproducing it.
///
/// Two paths, because signal handlers can do almost nothing safely:
///  * BOLTON_CHECK failures run in normal context: the logger's fatal hook
///    renders the full postmortem.json in-process before abort().
///  * Fatal signals (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT) run in the
///    handler, which only emits raw facts — frame addresses as
///    module+offset, the flight recorder's ASCII ring dump — to a
///    pre-opened fd using write(2). `boltondp postmortem finalize`
///    (or FinalizePostmortem) symbolizes and renders afterwards, in a
///    fresh process of the same binary: module+offset survives ASLR,
///    raw pointers would not.

struct PostmortemOptions {
  /// Directory for postmortem.raw / postmortem.json. Created if missing.
  std::string dir;
};

/// Arms the crash handler: captures the module table, pre-opens
/// <dir>/postmortem.raw, installs an alternate signal stack and handlers
/// for the fatal signals, registers the BOLTON_CHECK fatal hook, and
/// registers an atexit hook that removes the (empty) raw file on clean
/// exit. Idempotent per process; a second call just switches the
/// directory.
Status InstallCrashHandler(const PostmortemOptions& options);

/// Turns <dir>/postmortem.raw (written by the signal handler) into
/// <dir>/postmortem.json. OK if the json already exists and there is no
/// raw data (the in-process check-failure path), NotFound when the
/// directory holds no crash at all.
Status FinalizePostmortem(const std::string& dir);

/// Everything a postmortem report carries; filled either by the raw-file
/// parser (signal path) or directly in-process (check-failure path).
struct PostmortemReport {
  std::string reason;  // "signal" or "check_failure"
  int signal_number = 0;
  std::string signal_name;
  std::string fault_addr;     // "0x..." (signal path only)
  std::string fatal_message;  // check-failure path only
  uint64_t mono_ns = 0;
  uint64_t thread_id = 0;
  std::string thread_name;

  struct Frame {
    std::string module;  // "" when the pc matched no loaded module
    uint64_t offset = 0;  // relative to the module's relocation base
    uint64_t pc = 0;      // re-based pc in the symbolizing process
    std::string symbol;
    bool resolved = false;
  };
  std::vector<Frame> frames;

  /// The crashing thread's open spans, outermost first.
  std::vector<std::pair<uint64_t, std::string>> active_spans;

  std::vector<RecordedLogEvent> recent_logs;
  std::vector<RecordedSpan> recent_spans;
  std::vector<RecordedMetric> metrics;
  RingStats log_ring;
  RingStats span_ring;
  uint64_t peak_rss_bytes = 0;
  std::string failpoints;  // armed spec, "" when none
};

/// Renders the report as a bolton-postmortem-v1 JSON document — the one
/// rendering path shared by both postmortem paths.
std::string RenderPostmortemJson(const PostmortemReport& report);

namespace internal {
/// The check-failure path: builds and writes a fully symbolized
/// postmortem.json for the installed directory, in normal context.
/// Exposed for tests; installed as the logger's fatal hook.
void WritePostmortemNow(const char* fatal_message);
}  // namespace internal

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_POSTMORTEM_H_
