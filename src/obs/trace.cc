#include "obs/trace.h"

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "util/logging.h"

namespace bolton {
namespace obs {

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = [] {
    // Give the logger its span-id provider here so any process that traces
    // also correlates log lines to spans, without util/ knowing about obs/.
    bolton::internal::SetLogSpanIdProvider(&internal::CurrentSpanIdForLog);
    return new TraceRecorder();
  }();
  return *recorder;
}

void TraceRecorder::Record(SpanRecord record) {
  // Completed spans also land in the flight recorder's recent-span ring so
  // a crash report can show what the process was doing just before dying.
  FlightRecorder::Default().RecordSpan(record);
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string TraceRecorder::ToJsonl() const {
  return RenderSpansJsonl(Snapshot());
}

Status TraceRecorder::WriteJsonl(const std::string& path) const {
  return internal::WriteStringToFile(path, ToJsonl());
}

namespace internal {
ThreadSpanState& ThreadState() {
  thread_local ThreadSpanState state;
  return state;
}

uint64_t CurrentSpanIdForLog() { return ThreadState().current_id; }
}  // namespace internal

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  TraceRecorder& recorder = TraceRecorder::Default();
  if (!recorder.enabled()) return;
  internal::ThreadSpanState& tls = internal::ThreadState();
  parent_ = tls.current_id;
  depth_ = tls.depth;
  id_ = recorder.NextSpanId();
  tls.current_id = id_;
  tls.depth = depth_ + 1;
  if (depth_ < internal::ThreadSpanState::kMaxStack) {
    tls.stack_ids[depth_] = id_;
    tls.stack_names[depth_] = name_;
  }
  active_ = true;
  start_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const uint64_t end = MonotonicNanos();
  internal::ThreadSpanState& tls = internal::ThreadState();
  tls.current_id = parent_;
  tls.depth = depth_;
  if (depth_ < internal::ThreadSpanState::kMaxStack) {
    tls.stack_ids[depth_] = 0;
    tls.stack_names[depth_] = nullptr;
  }
  SpanRecord record;
  record.name = name_;
  record.id = id_;
  record.parent_id = parent_;
  record.depth = depth_;
  record.start_ns = start_;
  record.duration_ns = end - start_;
  record.thread_id = CurrentThreadId();
  record.thread_name = CurrentThreadName();
  if (has_counters_) {
    record.has_counters = true;
    record.counters = counters_;
  }
  TraceRecorder::Default().Record(std::move(record));
}

void PhaseAccumulator::Flush() {
  if (count_ == 0) return;
  TraceRecorder& recorder = TraceRecorder::Default();
  if (recorder.enabled()) {
    const internal::ThreadSpanState& tls = internal::ThreadState();
    SpanRecord record;
    record.name = name_;
    record.id = recorder.NextSpanId();
    record.parent_id = tls.current_id;
    record.depth = tls.depth;
    record.start_ns = MonotonicNanos();
    record.duration_ns = total_ns_;
    record.count = count_;
    record.thread_id = CurrentThreadId();
    record.thread_name = CurrentThreadName();
    recorder.Record(std::move(record));
  }
  total_ns_ = 0;
  count_ = 0;
}

}  // namespace obs
}  // namespace bolton
