#include "obs/build_info.h"

#include "linalg/simd.h"
#include "obs/perf_counters.h"
#include "util/strings.h"

// The build system stamps these onto this one translation unit (see
// src/obs/CMakeLists.txt); the fallbacks keep non-CMake builds compiling.
#ifndef BOLTON_GIT_SHA
#define BOLTON_GIT_SHA "unknown"
#endif
#ifndef BOLTON_BUILD_TYPE
#define BOLTON_BUILD_TYPE "unknown"
#endif
#ifndef BOLTON_VERSION
#define BOLTON_VERSION "0.0.0"
#endif

namespace bolton {
namespace obs {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return StrFormat("clang %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return StrFormat("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string SimdLevel() {
  // The tier the gradient kernels actually dispatch to (linalg/simd.h):
  // the BOLTON_SIMD override or the CPU probe — not merely what the CPU
  // supports. Cached with the rest of the build info at first read; a
  // later ScopedSimdTier test override is deliberately not reflected.
  return SimdTierName(ActiveSimdTier());
}

const char* PerfTierName(PerfTier tier) {
  switch (tier) {
    case PerfTier::kHardwareGroup:
      return "hardware-group";
    case PerfTier::kTaskClockOnly:
      return "task-clock";
    case PerfTier::kClockFallback:
      return "clock-fallback";
  }
  return "unknown";
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->version = BOLTON_VERSION;
    b->git_sha = BOLTON_GIT_SHA;
    b->build_type = BOLTON_BUILD_TYPE;
    b->compiler = CompilerString();
    b->simd = SimdLevel();
    b->perf_tier = PerfTierName(PerfCaps().tier);
    return b;
  }();
  return *info;
}

std::string RenderBuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  return StrFormat(
      "{\"version\":\"%s\",\"git_sha\":\"%s\",\"build_type\":\"%s\","
      "\"compiler\":\"%s\",\"simd\":\"%s\",\"perf_tier\":\"%s\"}",
      JsonEscape(b.version).c_str(), JsonEscape(b.git_sha).c_str(),
      JsonEscape(b.build_type).c_str(), JsonEscape(b.compiler).c_str(),
      JsonEscape(b.simd).c_str(), JsonEscape(b.perf_tier).c_str());
}

std::string BuildInfoSummaryLine() {
  const BuildInfo& b = GetBuildInfo();
  return StrFormat("boltondp %s (%s, %s, %s, %s, perf:%s)",
                   b.version.c_str(), b.git_sha.c_str(),
                   b.build_type.c_str(), b.compiler.c_str(), b.simd.c_str(),
                   b.perf_tier.c_str());
}

}  // namespace obs
}  // namespace bolton
