#ifndef BOLTON_OBS_HTTP_SERVER_H_
#define BOLTON_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/result.h"

namespace bolton {
namespace obs {

/// In-process observability endpoint: a dependency-free blocking-socket
/// HTTP/1.0 server on a background thread, loopback only, serving the live
/// state of the three telemetry pillars while the process runs.
///
/// Endpoints (all GET):
///   /metrics        Prometheus text exposition of the MetricsRegistry
///                   snapshot (cumulative buckets, _sum/_count, +Inf,
///                   derived p50/p95/p99 gauges).
///   /healthz        JSON liveness: uptime, pillar enablement, and the
///                   privacy-spend totals from the ledger.
///   /ledger?tail=N  Last N privacy-ledger events as JSONL (default 100,
///                   tail=0 for everything).
///   /spans          The completed-span buffer as JSONL.
///   /logz?tail=N&level=L
///                   Last N retained log events from the flight recorder
///                   as JSONL (default 100), at or above level L
///                   ("D"/"I"/"W"/"E" or the long names; default all).
///   /flightrecorder One JSON document: ring statistics, recent logs and
///                   spans, and the latest metrics snapshot.
///   /buildz         Build/runtime identity JSON (git sha, compiler,
///                   build type, SIMD level, perf-counter tier).
///   /quitquitquit   Asks the owner to stop lingering (see WaitForQuit);
///                   lets tests and operators end a --serve-obs run cleanly.
///
/// Requests are handled one at a time on the server thread — a scrape is a
/// snapshot + render, microseconds of work — so there is no connection
/// pool to manage and the only concurrency is against the lock-free
/// recording paths, which snapshots already tolerate.
class ObsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  /// the serving thread. The server runs until Stop()/destruction.
  ///
  /// `io_timeout_ms` bounds each connection's read AND write phases
  /// separately (poll-based deadlines): a client that connects and goes
  /// silent, or stops reading the response, is dropped after the timeout
  /// instead of wedging the single-threaded accept loop. Must be > 0 — an
  /// operator endpoint never blocks forever on one peer.
  static Result<std::unique_ptr<ObsServer>> Start(int port,
                                                  int io_timeout_ms = 5000);

  ~ObsServer();

  /// The actually bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Shuts the listener down and joins the thread. Idempotent.
  void Stop();

  /// True once a /quitquitquit request has been served.
  bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }

  /// Blocks until /quitquitquit arrives or `timeout_ms` elapses; returns
  /// quit_requested(). Lets `boltondp train --serve-obs` outlive training
  /// long enough to be scraped without hanging forever.
  bool WaitForQuit(int64_t timeout_ms);

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

 private:
  ObsServer() = default;

  void Serve();
  void HandleConnection(int fd);
  std::string HandleRequest(const std::string& method,
                            const std::string& target, int* http_status,
                            std::string* content_type);

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: Stop() wakes the poll loop
  int wake_write_fd_ = -1;
  int port_ = 0;
  int io_timeout_ms_ = 5000;
  uint64_t start_ns_ = 0;
  std::thread thread_;
  std::atomic<uint64_t> request_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> quit_{false};
  std::mutex quit_mu_;
  std::condition_variable quit_cv_;
};

/// Process-wide server instance for flag/env wiring (`--serve-obs`,
/// BOLTON_OBS_PORT): benches and tools that have no natural owner for the
/// server share this one.
Status StartDefaultObsServer(int port);
ObsServer* DefaultObsServer();
void StopDefaultObsServer();

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_HTTP_SERVER_H_
