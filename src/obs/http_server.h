#ifndef BOLTON_OBS_HTTP_SERVER_H_
#define BOLTON_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/result.h"

namespace bolton {
namespace obs {

/// One parsed HTTP request as handed to a registered handler.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/v1/train" (query stripped)
  std::string query;   // "tenant=t1&tail=5" (no leading '?')
  std::string body;    // exactly Content-Length bytes ("" for bodyless)
};

/// A handler's answer. `headers` carries extras beyond Content-Type/Length
/// (e.g. Retry-After).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Server shape. The defaults reproduce the historical observability
/// server: one handler thread (requests strictly serialized), a small
/// accepted-connection queue, GET-only built-in endpoints.
struct ObsServerOptions {
  /// 127.0.0.1:`port`; 0 = kernel-assigned ephemeral port.
  int port = 0;
  /// Per-connection read AND write deadline (poll-based), ms. Must be > 0.
  int io_timeout_ms = 5000;
  /// Concurrent request handlers. 1 keeps the classic strictly-serial obs
  /// server; `boltondp serve` raises it to overlap independent tenants.
  size_t handler_threads = 1;
  /// Accepted connections waiting for a handler beyond this are shed
  /// immediately with 503 + Retry-After instead of queuing without bound —
  /// overload degrades to fast refusals, not to memory growth.
  size_t max_pending = 16;
  /// Largest accepted request body; bigger POSTs get 413.
  size_t max_body_bytes = 1 << 20;
  /// Advertised in the Retry-After header of shed responses.
  uint64_t retry_after_seconds = 1;
};

/// In-process HTTP endpoint: a dependency-free HTTP/1.0 server on
/// background threads, loopback only. Serves the live state of the
/// telemetry pillars, plus any routes registered with RegisterHandler —
/// the serve daemon mounts its /v1 API here.
///
/// Built-in endpoints (all GET):
///   /metrics        Prometheus text exposition of the MetricsRegistry
///                   snapshot (cumulative buckets, _sum/_count, +Inf,
///                   derived p50/p95/p99 gauges).
///   /healthz        JSON liveness: uptime, pillar enablement, and the
///                   privacy-spend totals from the ledger.
///   /ledger?tail=N  Last N privacy-ledger events as JSONL (default 100,
///                   tail=0 for everything).
///   /spans          The completed-span buffer as JSONL.
///   /logz?tail=N&level=L
///                   Last N retained log events from the flight recorder
///                   as JSONL (default 100), at or above level L
///                   ("D"/"I"/"W"/"E" or the long names; default all).
///   /flightrecorder One JSON document: ring statistics, recent logs and
///                   spans, and the latest metrics snapshot.
///   /buildz         Build/runtime identity JSON (git sha, compiler,
///                   build type, SIMD level, perf-counter tier).
///   /quitquitquit   Asks the owner to stop lingering (see WaitForQuit);
///                   lets tests and operators end a --serve-obs run cleanly.
///
/// Concurrency: one accept thread feeds a bounded queue drained by
/// `handler_threads` workers. Handlers race only against the lock-free
/// telemetry recording paths (which snapshots tolerate) and whatever
/// state registered handlers bring — those synchronize themselves.
class ObsServer {
 public:
  static Result<std::unique_ptr<ObsServer>> Start(
      const ObsServerOptions& options);

  /// Historical signature; equivalent to Start({.port = port,
  /// .io_timeout_ms = io_timeout_ms}).
  static Result<std::unique_ptr<ObsServer>> Start(int port,
                                                  int io_timeout_ms = 5000);

  ~ObsServer();

  /// Mounts `handler` at exactly (`method`, `path`). A path with handlers
  /// answers 405 (with an Allow header) for unregistered methods; built-in
  /// paths stay GET-only. Registering over an existing (method, path)
  /// replaces it. Thread-safe; callable before or after traffic starts.
  void RegisterHandler(const std::string& method, const std::string& path,
                       HttpHandler handler);

  /// The actually bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Stops accepting, drains already-accepted connections, joins all
  /// threads. Idempotent. Bounded: each drained connection is capped by
  /// io_timeout_ms plus its handler's own runtime.
  void Stop();

  /// True once a /quitquitquit request has been served.
  bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }

  /// Blocks until /quitquitquit arrives or `timeout_ms` elapses; returns
  /// quit_requested(). Lets `boltondp train --serve-obs` outlive training
  /// long enough to be scraped without hanging forever.
  bool WaitForQuit(int64_t timeout_ms);

  /// Connections refused with 503 because the pending queue was full.
  uint64_t shed_count() const {
    return shed_count_.load(std::memory_order_relaxed);
  }

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

 private:
  ObsServer() = default;

  void AcceptLoop();
  void HandlerLoop();
  void HandleConnection(int fd);
  void ShedConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);
  std::string HandleBuiltin(const std::string& path, const std::string& query,
                            int* http_status, std::string* content_type);

  ObsServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: Stop() wakes the poll loop
  int wake_write_fd_ = -1;
  int port_ = 0;
  uint64_t start_ns_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a handler

  std::mutex handlers_mu_;
  std::map<std::string, std::map<std::string, HttpHandler>> handlers_;

  std::atomic<uint64_t> request_count_{0};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> quit_{false};
  std::mutex quit_mu_;
  std::condition_variable quit_cv_;
};

/// Process-wide server instance for flag/env wiring (`--serve-obs`,
/// BOLTON_OBS_PORT): benches and tools that have no natural owner for the
/// server share this one.
Status StartDefaultObsServer(int port);
ObsServer* DefaultObsServer();
void StopDefaultObsServer();

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_HTTP_SERVER_H_
