#ifndef BOLTON_OBS_METRICS_H_
#define BOLTON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bolton {
namespace obs {

/// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
///
/// Registration (GetCounter etc.) takes a lock and should happen once per
/// call site — cache the returned pointer in a function-local static.
/// Recording (Increment/Set/Observe) is lock-free: relaxed atomics, safe
/// from any thread. When the pillar is disabled every recording call is a
/// single relaxed load plus a branch.

/// Kill switch for the metrics pillar. Off by default.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order, plus an implicit +inf overflow bucket. Observe() is a
/// short linear scan and two relaxed atomic adds.
class Histogram {
 public:
  void Observe(double v) {
    if (!MetricsEnabled()) return;
    size_t bucket = bounds_.size();
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds.size() + 1
  std::atomic<double> sum_{0.0};
};

/// `count` exponentially spaced bucket edges starting at `start`, each
/// `factor` times the previous — the standard latency-bucket shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Default buckets for durations measured in seconds: 1 µs … ~100 s.
const std::vector<double>& LatencySecondsBuckets();

/// A point-in-time copy of every registered metric; reading it never
/// observes later updates (snapshot isolation).
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (last = +inf)
    uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Aligned human-readable dump, one metric per line, grouped by kind.
  /// Thin wrapper over RenderMetricsText (obs/export.h), which also feeds
  /// the HTTP /metrics endpoint — one rendering path for every surface.
  std::string ToText() const;
  /// One JSON object per line: {"type":"counter","name":...,"value":...}.
  /// Wrapper over RenderMetricsJsonl (obs/export.h).
  std::string ToJsonl() const;
};

/// Create-or-get registry of named metrics. Returned pointers stay valid
/// for the life of the process.
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented call site uses.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration; later calls with the same name
  /// return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps registrations (tests and repeated CLI
  /// runs).
  void Reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Writes Snapshot().ToText() / ToJsonl() of the default registry to `path`.
Status WriteMetricsText(const std::string& path);
Status WriteMetricsJsonl(const std::string& path);

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_METRICS_H_
