#ifndef BOLTON_OBS_EXPORT_H_
#define BOLTON_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace bolton {
namespace obs {

/// One rendering path for every telemetry surface. The CLI dump, the JSONL
/// file exporters, and the HTTP observability endpoints all serialize the
/// same snapshot types through the functions here, so a metric can never
/// print one value on the console and a different one on a scrape.

/// -------- Metrics --------

/// Aligned human-readable dump (the `--metrics` console format).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

/// One JSON object per metric.
std::string RenderMetricsJsonl(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (version 0.0.4): counters and gauges
/// as single samples, histograms as cumulative `_bucket{le="..."}` series
/// ending in `le="+Inf"` plus `_sum`/`_count`, and derived p50/p95/p99
/// gauges estimated from the buckets. Metric names are sanitized to the
/// Prometheus charset ('.' and any other illegal byte become '_').
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// "psgd.pass_seconds" -> "psgd_pass_seconds".
std::string PrometheusName(const std::string& name);

/// Quantile estimate (q in [0,1]) from cumulative histogram buckets with
/// linear interpolation inside the owning bucket. Observations in the +Inf
/// overflow bucket clamp to the largest finite bound; an empty histogram
/// yields 0.
double HistogramQuantile(const MetricsSnapshot::HistogramData& histogram,
                         double q);

/// -------- Privacy ledger --------

/// One ledger event as a single-line JSON object (no trailing newline).
std::string RenderLedgerEventJson(const LedgerEvent& event);

/// One JSON object per line, in record order.
std::string RenderLedgerJsonl(const std::vector<LedgerEvent>& events);

/// Spend totals accumulated over a ledger snapshot; the /healthz liveness
/// payload reports these so the budget is visible while the process runs.
struct LedgerTotals {
  uint64_t events = 0;
  uint64_t noise_draws = 0;
  uint64_t charges = 0;
  uint64_t rejected = 0;
  uint64_t calibrations = 0;
  /// Sums over *accepted* accountant charges only — draws describe noise
  /// that was added, charges describe budget that was spent.
  double epsilon_charged = 0.0;
  double delta_charged = 0.0;
};

LedgerTotals SummarizeLedger(const std::vector<LedgerEvent>& events);

/// -------- Profiles --------

/// Brendan Gregg collapsed-stack format: one line per distinct stack,
/// root-first frames joined by ';', a space, then the sample count —
/// pipeable straight into flamegraph.pl. Semicolons inside demangled frame
/// names are rewritten to ',' so they cannot split a frame.
std::string RenderCollapsed(const ProfileDump& dump);

/// Aggregated top-N-frames JSON (schema "boltondp-profile-v1"): run
/// metadata (hz, samples, dropped, duration, symbolization fractions) plus
/// the `top_n` hottest frames by self time, each with self/total sample
/// counts and percentages. Self time = samples where the frame is the leaf;
/// total = samples where it appears anywhere (once per sample).
std::string RenderProfileSummaryJson(const ProfileDump& dump, size_t top_n);

/// -------- Hardware counters --------

/// A PerfCounterDelta as a single-line JSON object (no trailing newline).
/// When `available`, carries the raw counts plus derived ipc /
/// cache_miss_rate / branch_miss_rate; otherwise
/// {"available":false,"task_clock_ns":N} so a counter-less environment is
/// explicit rather than a missing field.
std::string RenderPerfCountersJson(const PerfCounterDelta& delta);

/// -------- Trace spans --------

/// One span as a single-line JSON object (no trailing newline).
std::string RenderSpanJson(const SpanRecord& span);

/// One JSON object per line, in completion order.
std::string RenderSpansJsonl(const std::vector<SpanRecord>& spans);

/// -------- Flight recorder --------

/// One retained log event as a single-line JSON object with the exact
/// schema of the --log-jsonl file sink (util/logging.h), so /logz output
/// and the JSONL file are interchangeable:
///   {"mono_ns":N,"level":"I","tid":1,"thread":"main","file":"x.cc",
///    "line":7,"span":0,"msg":"..."}
std::string RenderRecordedLogJson(const RecordedLogEvent& event);

/// One JSON object per line, oldest first (the /logz payload).
std::string RenderRecordedLogsJsonl(const std::vector<RecordedLogEvent>& events);

/// One retained span as a single-line JSON object (no trailing newline).
std::string RenderRecordedSpanJson(const RecordedSpan& span);

/// One snapshot metric as a single-line JSON object (no trailing newline).
std::string RenderRecordedMetricJson(const RecordedMetric& metric);

/// The whole flight recorder as one "bolton-flightrecorder-v1" JSON
/// document: ring stats, recent logs and spans, and the latest metrics
/// snapshot. The /flightrecorder endpoint serves exactly this.
std::string RenderFlightRecorderJson(const FlightRecorder& recorder);

/// Chrome trace-event JSON (the array form): "M" metadata events naming
/// the process and each thread track, then one "X" complete event per
/// span (ts/dur in microseconds, tid = the span's thread_id) with count
/// and any attached counter delta in `args`. Loadable in chrome://tracing
/// and ui.perfetto.dev.
std::string RenderChromeTrace(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_EXPORT_H_
