#include "obs/profiler.h"

#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <map>
#include <thread>
#include <utility>

#include "obs/telemetry.h"
#include "util/strings.h"
#include "util/symbolize.h"

// glibc < 2.37 spells the SIGEV_THREAD_ID target field only through the
// internal union member.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace bolton {
namespace obs {

namespace {

/// backtrace(3) from the handler sees the handler itself and the kernel's
/// signal trampoline above the interrupted frame; skip them at capture so
/// samples start at the interrupted PC. (Dump additionally filters any
/// trampoline frame that slips through on other unwinder layouts.)
constexpr int kSkipFrames = 2;

/// The handler's only shared state: the active ring (null = not running)
/// and an in-flight count Stop() drains before declaring the run over.
std::atomic<StackSampleRing*> g_active_ring{nullptr};
std::atomic<int> g_handlers_in_flight{0};

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ucontext*/) {
  // Async-signal-safe by construction: atomics, a stack buffer, backtrace
  // (pre-warmed at Start so its one-time dynamic load happened outside
  // signal context), the gettid syscall, and the ring's lock-free Push.
  const int saved_errno = errno;
  g_handlers_in_flight.fetch_add(1, std::memory_order_acquire);
  StackSampleRing* ring = g_active_ring.load(std::memory_order_acquire);
  if (ring != nullptr) {
    void* pcs[StackSampleRing::kMaxDepth + kSkipFrames];
    const int depth =
        ::backtrace(pcs, StackSampleRing::kMaxDepth + kSkipFrames);
    if (depth > kSkipFrames) {
      ring->Push(pcs + kSkipFrames,
                 static_cast<size_t>(depth - kSkipFrames),
                 static_cast<uint64_t>(::syscall(SYS_gettid)));
    }
  }
  g_handlers_in_flight.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

/// Installs the SIGPROF handler once and leaves it installed for process
/// lifetime: a pending SIGPROF delivered after Stop() must hit our (then
/// no-op) handler, never SIG_DFL, whose disposition is process death.
void InstallHandlerOnce() {
  static const bool installed = [] {
    struct sigaction action {};
    action.sa_sigaction = SigprofHandler;
    action.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&action.sa_mask);
    return ::sigaction(SIGPROF, &action, nullptr) == 0;
  }();
  (void)installed;
}

/// Frames the capture-side skip can miss on some unwinder layouts.
bool IsTrampolineFrame(const std::string& name) {
  return name.find("__restore_rt") != std::string::npos ||
         name.find("SigprofHandler") != std::string::npos ||
         name.find("killpg") != std::string::npos;  // glibc trampoline alias
}

}  // namespace

Profiler& Profiler::Default() {
  static Profiler* instance = new Profiler();
  return *instance;
}

void Profiler::ArmLocked(ThreadEntry* entry) {
  if (entry->armed) return;
  struct sigevent event {};
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = static_cast<pid_t>(entry->tid);
  if (::timer_create(CLOCK_MONOTONIC, &event, &entry->timer) != 0) return;
  const long period_ns = 1000000000L / options_.hz;
  struct itimerspec spec {};
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  // Stagger first fires across threads so simultaneous samples do not
  // contend for adjacent ring slots on every tick.
  spec.it_value.tv_nsec = 1 + (entry->tid * 7919) % period_ns;
  spec.it_value.tv_sec = 0;
  if (::timer_settime(entry->timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(entry->timer);
    return;
  }
  entry->armed = true;
}

void Profiler::DisarmLocked(ThreadEntry* entry) {
  if (!entry->armed) return;
  ::timer_delete(entry->timer);
  entry->armed = false;
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.hz < 1 || options.hz > 1000) {
    return Status::InvalidArgument(
        StrFormat("profiler hz must be in [1, 1000], got %d", options.hz));
  }
  if (options.max_samples == 0) {
    return Status::InvalidArgument("profiler max_samples must be > 0");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("profiler already running");
  }
  // Force backtrace's lazy one-time initialization (it dlopens libgcc on
  // first use, which allocates) outside signal context.
  void* warmup[2];
  (void)::backtrace(warmup, 2);
  InstallHandlerOnce();

  options_ = options;
  ring_.Reset(options.max_samples);
  g_active_ring.store(&ring_, std::memory_order_release);

  // Register the starting thread; arm every registered thread.
  const int64_t tid = static_cast<int64_t>(::syscall(SYS_gettid));
  bool known = false;
  for (const ThreadEntry& entry : threads_) known |= entry.tid == tid;
  if (!known) threads_.push_back(ThreadEntry{tid, {}, false});
  for (ThreadEntry& entry : threads_) ArmLocked(&entry);

  start_ns_ = MonotonicNanos();
  stop_ns_ = 0;
  running_ = true;
  return Status::OK();
}

Status Profiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) {
    return Status::FailedPrecondition("profiler not running");
  }
  for (ThreadEntry& entry : threads_) DisarmLocked(&entry);
  g_active_ring.store(nullptr, std::memory_order_release);
  // Drain handlers that loaded the ring pointer before we cleared it; after
  // this loop no signal context can touch ring_ (late deliveries observe
  // the null ring and return).
  while (g_handlers_in_flight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  stop_ns_ = MonotonicNanos();
  running_ = false;
  return Status::OK();
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t Profiler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.Size();
}

uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.dropped();
}

void Profiler::RegisterCurrentThread() {
  const int64_t tid = static_cast<int64_t>(::syscall(SYS_gettid));
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadEntry& entry : threads_) {
    if (entry.tid == tid) {
      if (running_) ArmLocked(&entry);
      return;
    }
  }
  threads_.push_back(ThreadEntry{tid, {}, false});
  if (running_) ArmLocked(&threads_.back());
}

void Profiler::UnregisterCurrentThread() {
  const int64_t tid = static_cast<int64_t>(::syscall(SYS_gettid));
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].tid != tid) continue;
    DisarmLocked(&threads_[i]);
    threads_.erase(threads_.begin() + i);
    return;
  }
}

ProfileDump Profiler::Dump(size_t from_sample) const {
  ProfileDump dump;
  std::vector<StackSampleRing::Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dump.hz = options_.hz;
    dump.dropped = ring_.dropped();
    const uint64_t end_ns = running_ ? MonotonicNanos() : stop_ns_;
    dump.duration_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    ring_.CopyCommitted(from_sample, &samples);
  }
  dump.samples = samples.size();
  if (samples.empty()) return dump;

  // Aggregate identical raw stacks before symbolizing, then symbolize each
  // distinct pc once.
  std::map<std::vector<void*>, uint64_t> raw_stacks;
  std::vector<void*> all_pcs;
  for (const StackSampleRing::Sample& sample : samples) {
    std::vector<void*> key(sample.pcs, sample.pcs + sample.depth);
    ++raw_stacks[key];
    all_pcs.insert(all_pcs.end(), key.begin(), key.end());
  }
  std::map<void*, SymbolizedPc> symbols = SymbolizePcs(all_pcs);

  // Symbolization can merge raw stacks (same frames, different offsets), so
  // re-aggregate on the rendered frames.
  struct Agg {
    ProfileStack stack;
  };
  std::map<std::string, Agg> merged;
  uint64_t leaf_resolved_samples = 0;
  uint64_t any_resolved_samples = 0;
  for (const auto& [pcs, count] : raw_stacks) {
    ProfileStack stack;
    stack.count = count;
    // backtrace order is leaf-first; collapsed stacks want root-first.
    for (size_t i = pcs.size(); i-- > 0;) {
      const SymbolizedPc& symbol = symbols[pcs[i]];
      if (IsTrampolineFrame(symbol.name)) continue;
      stack.frames.push_back(symbol.name);
      stack.any_resolved |= symbol.resolved;
      stack.leaf_resolved = symbol.resolved;  // last pushed frame = leaf
    }
    if (stack.frames.empty()) continue;
    if (stack.leaf_resolved) leaf_resolved_samples += count;
    if (stack.any_resolved) any_resolved_samples += count;
    std::string key;
    for (const std::string& frame : stack.frames) {
      key += frame;
      key += ';';
    }
    auto [it, inserted] = merged.emplace(key, Agg{std::move(stack)});
    if (!inserted) it->second.stack.count += count;
  }

  dump.stacks.reserve(merged.size());
  for (auto& [key, agg] : merged) dump.stacks.push_back(std::move(agg.stack));
  std::sort(dump.stacks.begin(), dump.stacks.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              return a.count > b.count;
            });
  const double total = static_cast<double>(dump.samples);
  dump.leaf_symbolized_fraction =
      static_cast<double>(leaf_resolved_samples) / total;
  dump.any_symbolized_fraction =
      static_cast<double>(any_resolved_samples) / total;
  return dump;
}

}  // namespace obs
}  // namespace bolton
