#include "obs/telemetry.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/strings.h"
#include "util/thread_name.h"

namespace bolton {
namespace obs {

uint64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

uint64_t CurrentThreadId() { return ::bolton::CurrentThreadSmallId(); }

void SetCurrentThreadName(const std::string& name) {
  ::bolton::SetCurrentThreadName(name);
}

std::string CurrentThreadName() { return ::bolton::CurrentThreadName(); }

std::string JsonEscape(const std::string& s) {
  return ::bolton::JsonEscape(s);
}

void SetAllEnabled(bool enabled) {
  SetMetricsEnabled(enabled);
  TraceRecorder::Default().SetEnabled(enabled);
  PrivacyLedger::Default().SetEnabled(enabled);
  SetPerfCountersEnabled(enabled);
}

void UpdateProcessMemoryGauges() {
  if (!MetricsEnabled()) return;
  static Gauge* max_rss =
      MetricsRegistry::Default().GetGauge("process.max_rss_bytes");
  static Gauge* rss = MetricsRegistry::Default().GetGauge("process.rss_bytes");
  static Gauge* vm = MetricsRegistry::Default().GetGauge("process.vm_bytes");
  static Gauge* peak_rss =
      MetricsRegistry::Default().GetGauge("process.peak_rss_bytes");

  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux.
    max_rss->Set(static_cast<double>(usage.ru_maxrss) * 1024.0);
  }
  // /proc/self/statm: "size resident ..." in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f != nullptr) {
    unsigned long long vm_pages = 0, rss_pages = 0;
    if (std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages) == 2) {
      const double page = static_cast<double>(::sysconf(_SC_PAGESIZE));
      vm->Set(static_cast<double>(vm_pages) * page);
      rss->Set(static_cast<double>(rss_pages) * page);
    }
    std::fclose(f);
  }
  // /proc/self/status VmHWM: the peak resident set, which ru_maxrss can
  // under-report after memory is returned (it is never reset, but VmHWM
  // is the kernel's authoritative high-water mark).
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
        peak_rss->Set(static_cast<double>(kb) * 1024.0);
        break;
      }
    }
    std::fclose(status);
  }
}

void InstallFailpointObsBridge() {
  FailpointRegistry::Default().SetObserver(
      [](const char* site, uint64_t hit, const char* action) {
        static Counter* fired =
            MetricsRegistry::Default().GetCounter("failpoints_fired");
        fired->Increment();
        PrivacyLedger& ledger = PrivacyLedger::Default();
        if (!ledger.enabled()) return;
        LedgerEvent event;
        event.kind = "fault";
        event.mechanism = action;
        event.label = site;
        event.step = hit;
        ledger.Record(std::move(event));
      });
}

namespace internal {

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace obs
}  // namespace bolton
