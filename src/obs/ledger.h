#ifndef BOLTON_OBS_LEDGER_H_
#define BOLTON_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace bolton {
namespace obs {

/// The privacy-spend ledger: a structured, append-only record of every
/// privacy-relevant action the library takes — each DP noise draw (bolt-on
/// output perturbation, SCS13/BST14 per-iteration noise), every accountant
/// charge, and the per-run noise calibrations — with the parameters that
/// were actually used. Dump to JSONL for offline audit; see DESIGN.md
/// "Observability" for the event schema.
///
/// Off by default; a disabled call site pays one relaxed load + branch.

/// One auditable event.
struct LedgerEvent {
  /// Assigned by the ledger: 1-based sequence number and monotonic time.
  uint64_t seq = 0;
  uint64_t time_ns = 0;

  /// "noise_draw" | "accountant_charge" | "calibration" — the privacy
  /// events proper — plus the robustness audit trail: "fault" (an injected
  /// or real fault observed at a failpoint site), "retry" (a shard retried
  /// after a recoverable failure), "checkpoint" (pass-boundary state
  /// persisted), "resume" (a run continued from a checkpoint) — plus the
  /// serve budget lifecycle: "budget_reserve" (write-ahead hold before a
  /// private release), "budget_commit" (hold converted to spend),
  /// "budget_refund" (hold released, provably no noise drawn),
  /// "budget_refusal" (request refused as over budget; accepted=false),
  /// "budget_recover" (a pending hold found at restart, conservatively
  /// promoted to spend).
  std::string kind;
  /// "laplace" | "gaussian" | "gaussian_per_step" | "" (charges).
  std::string mechanism;
  /// Call-site tag ("dp_noise.spherical_laplace", "bst14.per_step", …) or
  /// the accountant charge label.
  std::string label;
  /// Owning tenant for multi-tenant serve traffic ("" for single-run CLI
  /// events). Budget events (budget_reserve/commit/refund/refusal/recover)
  /// always carry it, so a dump can be audited per account.
  std::string tenant;

  double epsilon = 0.0;
  double delta = 0.0;
  double sensitivity = 0.0;
  /// Δ₂/ε for the Laplace mechanism, σ for Gaussian mechanisms.
  double noise_scale = 0.0;
  /// ‖κ‖₂ of the noise vector actually drawn (0 for non-draw events).
  double noise_norm = 0.0;

  uint64_t dim = 0;
  /// 1-based update index for per-iteration draws; 0 otherwise.
  uint64_t step = 0;
  /// Shard count a sharded-run calibration was computed for (Lemma 10
  /// model averaging); 1 for serial calibrations, 0 when not applicable.
  uint64_t shards = 0;
  /// Rng::StateFingerprint() captured immediately before the draw, so a
  /// dump identifies which generator state produced each noise vector.
  uint64_t rng_fingerprint = 0;

  /// False for accountant charges rejected as over budget.
  bool accepted = true;
};

/// Thread-safe append-only event log.
class PrivacyLedger {
 public:
  static PrivacyLedger& Default();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Appends `event`, assigning seq and time_ns. No-op while disabled.
  void Record(LedgerEvent event);

  std::vector<LedgerEvent> Snapshot() const;
  size_t size() const;
  void Clear();

  /// Replaces the log with `events` (a prior Snapshot), continuing seq
  /// numbering after the largest restored seq. Used by checkpoint resume
  /// (core/checkpoint.h) so a recovered run's audit trail is continuous —
  /// calibration events recorded before the crash survive into the dump of
  /// the resumed process.
  void Restore(std::vector<LedgerEvent> events);

  /// One JSON object per event, in record order.
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

  PrivacyLedger() = default;
  PrivacyLedger(const PrivacyLedger&) = delete;
  PrivacyLedger& operator=(const PrivacyLedger&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<LedgerEvent> events_;
  uint64_t next_seq_ = 1;
};

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_LEDGER_H_
