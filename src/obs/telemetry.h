#ifndef BOLTON_OBS_TELEMETRY_H_
#define BOLTON_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace bolton {
namespace obs {

/// Shared primitives for the telemetry pillars (obs/metrics.h, obs/trace.h,
/// obs/ledger.h).
///
/// Every pillar is off by default and its recording calls reduce to a branch
/// on a relaxed atomic when disabled, so instrumented hot paths stay honest
/// in runtime measurements (the Figure 5 overhead contract; see DESIGN.md
/// "Observability").

/// Nanoseconds on the process-wide monotonic clock (steady_clock), relative
/// to the first telemetry call. Never goes backwards; unrelated to wall time.
uint64_t MonotonicNanos();

/// A stable small integer for the calling thread, used to label spans.
/// Thin wrapper over util/thread_name.h (kept for source compatibility):
/// the logger, the trace layer, and the crash postmortem all share the one
/// id counter and name slot there, so "t4" means the same thread
/// everywhere.
uint64_t CurrentThreadId();

/// Names the calling thread for telemetry output ("main", "psgd-shard-3").
/// Forwards to bolton::SetCurrentThreadName (util/thread_name.h), which
/// also pushes the name into pthread_setname_np so it shows up in /proc
/// and debuggers.
void SetCurrentThreadName(const std::string& name);

/// The name set via SetCurrentThreadName, else the kernel name from
/// pthread_getname_np, else "thread". Never empty.
std::string CurrentThreadName();

/// Escapes `s` for embedding inside a double-quoted JSON string.
/// Forwards to bolton::JsonEscape (util/strings.h).
std::string JsonEscape(const std::string& s);

/// Master switch: flips metrics, trace, ledger, and perf-counter
/// recording together.
void SetAllEnabled(bool enabled);

/// Refreshes the process memory gauges — process.rss_bytes and
/// process.vm_bytes from /proc/self/statm, process.max_rss_bytes from
/// getrusage(2), process.peak_rss_bytes from VmHWM in /proc/self/status
/// — in the default registry. Polled on read: the obs HTTP
/// server calls this on every /metrics scrape and the CLI/bench dump paths
/// call it before rendering, so the gauges are fresh wherever they are
/// observed without a dedicated poller thread.
void UpdateProcessMemoryGauges();

/// Wires the fault-injection registry (util/failpoint.h — a layer below
/// obs, so it cannot call us directly) into the telemetry pillars: every
/// fired failpoint increments the `failpoints_fired` counter and, when
/// the ledger is enabled, records a "fault" event carrying the site (as
/// label), hit count (as step), and action. Idempotent; installed by the
/// CLI/bench surfaces that enable telemetry.
void InstallFailpointObsBridge();

namespace internal {
/// Overwrites `path` with `content`; the pillars' JSONL/text exporters all
/// funnel through this one writer.
Status WriteStringToFile(const std::string& path, const std::string& content);
}  // namespace internal

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_TELEMETRY_H_
