#ifndef BOLTON_OBS_BUILD_INFO_H_
#define BOLTON_OBS_BUILD_INFO_H_

#include <string>

namespace bolton {
namespace obs {

/// What binary is this? Every diagnostic artifact answers it the same way:
/// `boltondp version` prints it, the obs HTTP server serves it at /buildz,
/// crash postmortems and bench result JSON embed it — so a report can
/// always be traced back to a commit and a build configuration.
struct BuildInfo {
  std::string version;     // project version (CMake)
  std::string git_sha;     // short commit sha + "-dirty", or "unknown"
  std::string build_type;  // CMAKE_BUILD_TYPE ("RelWithDebInfo", "Debug")
  std::string compiler;    // "gcc 13.2.0" / "clang 17.0.1"
  /// SIMD tier the gradient kernels dispatch to (linalg/simd.h: runtime
  /// CPU probe, overridable via BOLTON_SIMD): "avx512", "avx2", "sse2",
  /// or "scalar".
  std::string simd;
  /// Perf-counter capability tier of this host (obs/perf_counters.h):
  /// "hardware-group", "task-clock", or "clock-fallback".
  std::string perf_tier;
};

/// The process's build info; the runtime fields are probed once on first
/// call and cached.
const BuildInfo& GetBuildInfo();

/// One JSON object, e.g. {"version":"1.0.0","git_sha":"11e6495", ...}.
/// The single rendering path for /buildz, the postmortem "build" key, and
/// the bench-JSON "build" key.
std::string RenderBuildInfoJson();

/// One human line for `boltondp version`:
/// "boltondp 1.0.0 (11e6495, RelWithDebInfo, gcc 13.2.0, avx2, ...)".
std::string BuildInfoSummaryLine();

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_BUILD_INFO_H_
