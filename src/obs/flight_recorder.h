#ifndef BOLTON_OBS_FLIGHT_RECORDER_H_
#define BOLTON_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/logging.h"

namespace bolton {
namespace obs {

/// Always-on in-memory flight recorder: fixed-capacity rings of the most
/// recent log events, completed trace spans, and a periodic metrics
/// snapshot. Unlike the opt-in telemetry pillars this runs in every
/// process, because its whole purpose is the run nobody planned to debug —
/// the crash handler (obs/postmortem.h) dumps the rings into the
/// postmortem, and the obs HTTP server serves them live at /logz and
/// /flightrecorder.
///
/// Concurrency follows the drop-not-block idiom of util/sample_ring.h,
/// adapted to a wrapping ring: writers claim a slot by sequence number and
/// take a per-slot generation from even to odd with one CAS; a writer that
/// loses the CAS drops its event (counted) instead of blocking. Every slot
/// field — including the text, packed into arrays of atomic words — is a
/// relaxed atomic, so readers never race with writers in the data-race
/// sense: a torn slot is detected by the generation check and skipped.
/// That same property makes the rings readable from a signal handler;
/// WriteRawTo() below does exactly that.

/// Fixed-capacity text field made of atomic words. Store() is for normal
/// context; LoadTo() does only relaxed loads and plain char stores, so it
/// is async-signal-safe. The text is truncated to kBytes - 1 characters.
template <size_t kBytes>
class AtomicText {
 public:
  static_assert(kBytes % 8 == 0, "kBytes must be a multiple of 8");
  static constexpr size_t kCapacity = kBytes;

  void Store(const char* text) {
    char packed[kBytes] = {0};
    for (size_t i = 0; i + 1 < kBytes && text[i] != '\0'; ++i) {
      packed[i] = text[i];
    }
    for (size_t w = 0; w < kBytes / 8; ++w) {
      uint64_t word = 0;
      for (size_t b = 0; b < 8; ++b) {
        word |= static_cast<uint64_t>(
                    static_cast<unsigned char>(packed[w * 8 + b]))
                << (8 * b);
      }
      words_[w].store(word, std::memory_order_relaxed);
    }
  }

  /// `out` must hold at least kBytes; always NUL-terminated on return.
  void LoadTo(char* out) const {
    for (size_t w = 0; w < kBytes / 8; ++w) {
      const uint64_t word = words_[w].load(std::memory_order_relaxed);
      for (size_t b = 0; b < 8; ++b) {
        out[w * 8 + b] = static_cast<char>((word >> (8 * b)) & 0xff);
      }
    }
    out[kBytes - 1] = '\0';
  }

 private:
  std::atomic<uint64_t> words_[kBytes / 8] = {};
};

/// A retained log event, copied out of the ring (strings owned).
struct RecordedLogEvent {
  uint64_t seq = 0;
  uint64_t mono_ns = 0;
  LogLevel level = LogLevel::kInfo;
  uint64_t thread_id = 0;
  uint64_t span_id = 0;
  int line = 0;
  std::string thread_name;  // "" when the thread was never named
  std::string file;
  std::string message;
};

/// A retained completed span, copied out of the ring.
struct RecordedSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t count = 1;
  uint64_t thread_id = 0;
  std::string name;
  std::string thread_name;
};

/// One metric from the latest snapshot. kind is 'c' (counter, value is an
/// integral count) or 'g' (gauge).
struct RecordedMetric {
  std::string name;
  char kind = 'g';
  double value = 0.0;
};

/// Append/drop accounting for one ring. `appended` counts every event
/// offered (old entries are overwritten once it exceeds `capacity`);
/// `dropped` counts events lost to writer-writer slot contention.
struct RingStats {
  uint64_t capacity = 0;
  uint64_t appended = 0;
  uint64_t dropped = 0;
};

class FlightRecorder : public LogSink {
 public:
  static constexpr size_t kLogSlots = 256;
  static constexpr size_t kSpanSlots = 128;
  static constexpr size_t kMetricEntries = 64;
  /// Auto-snapshot the metrics registry at most this often, piggybacked on
  /// the log write path (no poller thread).
  static constexpr uint64_t kMetricSnapshotPeriodNs = 1000000000ull;

  /// The process-wide recorder. First use constructs it and registers it
  /// as a log sink, so merely touching Default() arms the ring.
  static FlightRecorder& Default();

  /// LogSink: copies the event into the log ring and occasionally refreshes
  /// the metrics snapshot. Called under the logger's dispatch lock.
  void Write(const LogEvent& event) override;

  /// Copies a completed span into the span ring (called by
  /// TraceRecorder::Record for every finished span).
  void RecordSpan(const SpanRecord& record);

  /// Snapshots the default metrics registry (counters and gauges; the
  /// first kMetricEntries of each) into the double-buffered slot now.
  /// The postmortem writer calls this before rendering so the report
  /// carries fresh values.
  void SnapshotMetricsNow();

  /// The most recent retained events at or above `min_level`, oldest
  /// first, at most `max`. Lock-free readers: an event being overwritten
  /// mid-read is skipped, not blocked on.
  std::vector<RecordedLogEvent> RecentLogs(size_t max,
                                           LogLevel min_level) const;
  std::vector<RecordedSpan> RecentSpans(size_t max) const;
  std::vector<RecordedMetric> LatestMetrics() const;
  /// MonotonicNanos timestamp of the latest metrics snapshot, 0 if none.
  uint64_t LatestMetricsTimestampNs() const;

  RingStats LogRingStats() const;
  RingStats SpanRingStats() const;

  /// Dumps the rings to `fd` as plain ASCII lines ("fllog ...",
  /// "flspan ...", "flmetric ...", "flstats ..."). Uses only atomic loads,
  /// stack buffers, and write(2) — async-signal-safe, which is the whole
  /// point: the crash handler calls this with the process in an arbitrary
  /// state. The postmortem finalizer parses the lines back.
  void WriteRawTo(int fd) const;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder() = default;

  struct LogSlot {
    std::atomic<uint64_t> gen{0};  // seqlock: odd = write in progress
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> mono_ns{0};
    std::atomic<uint64_t> level{0};
    std::atomic<uint64_t> thread_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<int64_t> line{0};
    AtomicText<24> thread_name;
    AtomicText<40> file;
    AtomicText<192> message;
  };

  struct SpanSlot {
    std::atomic<uint64_t> gen{0};
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> thread_id{0};
    AtomicText<48> name;
    AtomicText<24> thread_name;
  };

  struct MetricEntry {
    AtomicText<48> name;
    std::atomic<uint64_t> kind{0};  // 'c' or 'g', 0 = empty
    std::atomic<uint64_t> value_bits{0};
  };
  struct MetricBuffer {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> mono_ns{0};
    MetricEntry entries[kMetricEntries];
  };

  LogSlot log_slots_[kLogSlots];
  SpanSlot span_slots_[kSpanSlots];
  std::atomic<uint64_t> logs_appended_{0};
  std::atomic<uint64_t> logs_dropped_{0};
  std::atomic<uint64_t> spans_appended_{0};
  std::atomic<uint64_t> spans_dropped_{0};

  MetricBuffer metric_buffers_[2];
  std::atomic<uint32_t> active_metric_buffer_{0};
  std::atomic<uint64_t> last_snapshot_ns_{0};
};

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_FLIGHT_RECORDER_H_
