#include "obs/flight_recorder.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace bolton {
namespace obs {

namespace {

/// write(2) with short-write/EINTR handling; the only output primitive in
/// WriteRawTo, so the whole dump stays async-signal-safe.
void RawWrite(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

/// Minimal hand-rolled formatters: snprintf is not async-signal-safe.
size_t FormatUint(uint64_t v, char* out) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) out[i] = digits[n - 1 - i];
  return n;
}

size_t FormatHex(uint64_t v, char* out) {
  static const char kHex[] = "0123456789abcdef";
  out[0] = '0';
  out[1] = 'x';
  char digits[16];
  size_t n = 0;
  do {
    digits[n++] = kHex[v & 0xf];
    v >>= 4;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) out[2 + i] = digits[n - 1 - i];
  return 2 + n;
}

/// Builds one output line in a stack buffer; silently truncates rather
/// than overflowing (diagnostics must never make things worse).
class LineBuilder {
 public:
  void Text(const char* s) {
    while (*s != '\0' && len_ < sizeof(buf_) - 1) buf_[len_++] = *s++;
  }
  /// A whitespace-free token: spaces/tabs become '_', "" becomes "-".
  void Token(const char* s) {
    if (*s == '\0') {
      Text("-");
      return;
    }
    while (*s != '\0' && len_ < sizeof(buf_) - 1) {
      const char c = *s++;
      buf_[len_++] = (c == ' ' || c == '\t') ? '_' : c;
    }
  }
  /// Free text at end of line: newlines become spaces.
  void Message(const char* s) {
    while (*s != '\0' && len_ < sizeof(buf_) - 1) {
      const char c = *s++;
      buf_[len_++] = (c == '\n' || c == '\r') ? ' ' : c;
    }
  }
  void Uint(uint64_t v) {
    if (len_ + 20 < sizeof(buf_)) len_ += FormatUint(v, buf_ + len_);
  }
  void Hex(uint64_t v) {
    if (len_ + 18 < sizeof(buf_)) len_ += FormatHex(v, buf_ + len_);
  }
  void Flush(int fd) {
    if (len_ < sizeof(buf_)) buf_[len_] = '\n';
    RawWrite(fd, buf_, len_ + 1);
    len_ = 0;
  }

 private:
  char buf_[512];
  size_t len_ = 0;
};

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

FlightRecorder& FlightRecorder::Default() {
  // Leaked, and self-registering: touching Default() is all a process has
  // to do to get crash-time log retention.
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    AddLogSink(r);
    return r;
  }();
  return *recorder;
}

void FlightRecorder::Write(const LogEvent& event) {
  const uint64_t seq = logs_appended_.fetch_add(1, std::memory_order_relaxed);
  LogSlot& slot = log_slots_[seq % kLogSlots];
  uint64_t gen = slot.gen.load(std::memory_order_relaxed);
  if ((gen & 1) != 0 ||
      !slot.gen.compare_exchange_strong(gen, gen + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    // Another writer owns this slot right now; drop rather than block.
    logs_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.mono_ns.store(event.mono_ns, std::memory_order_relaxed);
  slot.level.store(static_cast<uint64_t>(event.level),
                   std::memory_order_relaxed);
  slot.thread_id.store(event.thread_id, std::memory_order_relaxed);
  slot.span_id.store(event.span_id, std::memory_order_relaxed);
  slot.line.store(event.line, std::memory_order_relaxed);
  slot.thread_name.Store(event.thread_name);
  slot.file.Store(event.file);
  // The event's message pointer is only valid for this call; the ring's
  // copy (truncated to the slot width) is what survives.
  slot.message.Store(event.message);
  slot.gen.store(gen + 2, std::memory_order_release);

  // Piggyback the periodic metrics snapshot on the log path: no poller
  // thread, and a process that logs at all keeps its snapshot fresh to
  // within kMetricSnapshotPeriodNs.
  const uint64_t now = MonotonicNanos();
  const uint64_t last = last_snapshot_ns_.load(std::memory_order_relaxed);
  if (last == 0 || now - last >= kMetricSnapshotPeriodNs) {
    uint64_t expected = last;
    if (last_snapshot_ns_.compare_exchange_strong(
            expected, now | 1, std::memory_order_relaxed,
            std::memory_order_relaxed)) {
      SnapshotMetricsNow();
    }
  }
}

void FlightRecorder::RecordSpan(const SpanRecord& record) {
  const uint64_t seq =
      spans_appended_.fetch_add(1, std::memory_order_relaxed);
  SpanSlot& slot = span_slots_[seq % kSpanSlots];
  uint64_t gen = slot.gen.load(std::memory_order_relaxed);
  if ((gen & 1) != 0 ||
      !slot.gen.compare_exchange_strong(gen, gen + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.id.store(record.id, std::memory_order_relaxed);
  slot.parent_id.store(record.parent_id, std::memory_order_relaxed);
  slot.start_ns.store(record.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(record.duration_ns, std::memory_order_relaxed);
  slot.count.store(record.count, std::memory_order_relaxed);
  slot.thread_id.store(record.thread_id, std::memory_order_relaxed);
  slot.name.Store(record.name.c_str());
  slot.thread_name.Store(record.thread_name.c_str());
  slot.gen.store(gen + 2, std::memory_order_release);
}

void FlightRecorder::SnapshotMetricsNow() {
  const MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  const uint32_t next =
      1u - active_metric_buffer_.load(std::memory_order_relaxed);
  MetricBuffer& buf = metric_buffers_[next];
  uint64_t n = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (n >= kMetricEntries) break;
    buf.entries[n].name.Store(name.c_str());
    buf.entries[n].kind.store('c', std::memory_order_relaxed);
    buf.entries[n].value_bits.store(value, std::memory_order_relaxed);
    ++n;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (n >= kMetricEntries) break;
    buf.entries[n].name.Store(name.c_str());
    buf.entries[n].kind.store('g', std::memory_order_relaxed);
    buf.entries[n].value_bits.store(DoubleBits(value),
                                    std::memory_order_relaxed);
    ++n;
  }
  buf.count.store(n, std::memory_order_relaxed);
  buf.mono_ns.store(MonotonicNanos(), std::memory_order_relaxed);
  active_metric_buffer_.store(next, std::memory_order_release);
}

std::vector<RecordedLogEvent> FlightRecorder::RecentLogs(
    size_t max, LogLevel min_level) const {
  const uint64_t appended = logs_appended_.load(std::memory_order_acquire);
  const uint64_t begin = appended > kLogSlots ? appended - kLogSlots : 0;
  std::vector<RecordedLogEvent> out;
  for (uint64_t seq = begin; seq < appended; ++seq) {
    const LogSlot& slot = log_slots_[seq % kLogSlots];
    const uint64_t gen1 = slot.gen.load(std::memory_order_acquire);
    if ((gen1 & 1) != 0) continue;  // mid-write; skip, never wait
    RecordedLogEvent event;
    event.seq = slot.seq.load(std::memory_order_relaxed);
    event.mono_ns = slot.mono_ns.load(std::memory_order_relaxed);
    event.level = static_cast<LogLevel>(
        slot.level.load(std::memory_order_relaxed));
    event.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    event.span_id = slot.span_id.load(std::memory_order_relaxed);
    event.line =
        static_cast<int>(slot.line.load(std::memory_order_relaxed));
    char text[192];
    slot.thread_name.LoadTo(text);
    event.thread_name = text;
    slot.file.LoadTo(text);
    event.file = text;
    slot.message.LoadTo(text);
    event.message = text;
    const uint64_t gen2 = slot.gen.load(std::memory_order_acquire);
    if (gen1 != gen2 || event.seq != seq) continue;  // torn or lapped
    if (event.level < min_level) continue;
    out.push_back(std::move(event));
  }
  if (out.size() > max) out.erase(out.begin(), out.end() - max);
  return out;
}

std::vector<RecordedSpan> FlightRecorder::RecentSpans(size_t max) const {
  const uint64_t appended = spans_appended_.load(std::memory_order_acquire);
  const uint64_t begin = appended > kSpanSlots ? appended - kSpanSlots : 0;
  std::vector<RecordedSpan> out;
  for (uint64_t seq = begin; seq < appended; ++seq) {
    const SpanSlot& slot = span_slots_[seq % kSpanSlots];
    const uint64_t gen1 = slot.gen.load(std::memory_order_acquire);
    if ((gen1 & 1) != 0) continue;
    RecordedSpan span;
    const uint64_t slot_seq = slot.seq.load(std::memory_order_relaxed);
    span.id = slot.id.load(std::memory_order_relaxed);
    span.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    span.count = slot.count.load(std::memory_order_relaxed);
    span.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    char text[48];
    slot.name.LoadTo(text);
    span.name = text;
    slot.thread_name.LoadTo(text);
    span.thread_name = text;
    const uint64_t gen2 = slot.gen.load(std::memory_order_acquire);
    if (gen1 != gen2 || slot_seq != seq) continue;
    out.push_back(std::move(span));
  }
  if (out.size() > max) out.erase(out.begin(), out.end() - max);
  return out;
}

std::vector<RecordedMetric> FlightRecorder::LatestMetrics() const {
  const MetricBuffer& buf =
      metric_buffers_[active_metric_buffer_.load(std::memory_order_acquire)];
  const uint64_t n = buf.count.load(std::memory_order_relaxed);
  std::vector<RecordedMetric> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n && i < kMetricEntries; ++i) {
    RecordedMetric metric;
    char name[48];
    buf.entries[i].name.LoadTo(name);
    metric.name = name;
    metric.kind = static_cast<char>(
        buf.entries[i].kind.load(std::memory_order_relaxed));
    const uint64_t bits =
        buf.entries[i].value_bits.load(std::memory_order_relaxed);
    metric.value = metric.kind == 'c' ? static_cast<double>(bits)
                                      : BitsToDouble(bits);
    out.push_back(std::move(metric));
  }
  return out;
}

uint64_t FlightRecorder::LatestMetricsTimestampNs() const {
  const MetricBuffer& buf =
      metric_buffers_[active_metric_buffer_.load(std::memory_order_acquire)];
  return buf.mono_ns.load(std::memory_order_relaxed);
}

RingStats FlightRecorder::LogRingStats() const {
  return RingStats{kLogSlots,
                   logs_appended_.load(std::memory_order_relaxed),
                   logs_dropped_.load(std::memory_order_relaxed)};
}

RingStats FlightRecorder::SpanRingStats() const {
  return RingStats{kSpanSlots,
                   spans_appended_.load(std::memory_order_relaxed),
                   spans_dropped_.load(std::memory_order_relaxed)};
}

void FlightRecorder::WriteRawTo(int fd) const {
  LineBuilder line;

  line.Text("flstats logs ");
  line.Uint(kLogSlots);
  line.Text(" ");
  line.Uint(logs_appended_.load(std::memory_order_relaxed));
  line.Text(" ");
  line.Uint(logs_dropped_.load(std::memory_order_relaxed));
  line.Flush(fd);

  line.Text("flstats spans ");
  line.Uint(kSpanSlots);
  line.Text(" ");
  line.Uint(spans_appended_.load(std::memory_order_relaxed));
  line.Text(" ");
  line.Uint(spans_dropped_.load(std::memory_order_relaxed));
  line.Flush(fd);

  const uint64_t logs_end = logs_appended_.load(std::memory_order_acquire);
  const uint64_t logs_begin =
      logs_end > kLogSlots ? logs_end - kLogSlots : 0;
  for (uint64_t seq = logs_begin; seq < logs_end; ++seq) {
    const LogSlot& slot = log_slots_[seq % kLogSlots];
    const uint64_t gen1 = slot.gen.load(std::memory_order_acquire);
    if ((gen1 & 1) != 0) continue;
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    char text[192];
    line.Text("fllog ");
    line.Uint(seq);
    line.Text(" ");
    line.Uint(slot.mono_ns.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Text(LogLevelTag(static_cast<LogLevel>(
        slot.level.load(std::memory_order_relaxed))));
    line.Text(" ");
    line.Uint(slot.thread_id.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.span_id.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(static_cast<uint64_t>(
        slot.line.load(std::memory_order_relaxed)));
    line.Text(" ");
    slot.thread_name.LoadTo(text);
    line.Token(text);
    line.Text(" ");
    slot.file.LoadTo(text);
    line.Token(text);
    line.Text(" |");
    slot.message.LoadTo(text);
    line.Message(text);
    line.Flush(fd);
  }

  const uint64_t spans_end = spans_appended_.load(std::memory_order_acquire);
  const uint64_t spans_begin =
      spans_end > kSpanSlots ? spans_end - kSpanSlots : 0;
  for (uint64_t seq = spans_begin; seq < spans_end; ++seq) {
    const SpanSlot& slot = span_slots_[seq % kSpanSlots];
    const uint64_t gen1 = slot.gen.load(std::memory_order_acquire);
    if ((gen1 & 1) != 0) continue;
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;
    char text[48];
    line.Text("flspan ");
    line.Uint(slot.id.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.parent_id.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.start_ns.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.duration_ns.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.count.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Uint(slot.thread_id.load(std::memory_order_relaxed));
    line.Text(" ");
    slot.thread_name.LoadTo(text);
    line.Token(text);
    line.Text(" ");
    slot.name.LoadTo(text);
    line.Token(text);
    line.Flush(fd);
  }

  const MetricBuffer& buf =
      metric_buffers_[active_metric_buffer_.load(std::memory_order_acquire)];
  const uint64_t n = buf.count.load(std::memory_order_relaxed);
  if (n > 0) {
    line.Text("flmetricts ");
    line.Uint(buf.mono_ns.load(std::memory_order_relaxed));
    line.Flush(fd);
  }
  for (uint64_t i = 0; i < n && i < kMetricEntries; ++i) {
    const uint64_t kind = buf.entries[i].kind.load(std::memory_order_relaxed);
    if (kind == 0) continue;
    char name[48];
    buf.entries[i].name.LoadTo(name);
    line.Text("flmetric ");
    const char kind_text[2] = {static_cast<char>(kind), '\0'};
    line.Text(kind_text);
    line.Text(" ");
    line.Hex(buf.entries[i].value_bits.load(std::memory_order_relaxed));
    line.Text(" ");
    line.Token(name);
    line.Flush(fd);
  }
}

}  // namespace obs
}  // namespace bolton
