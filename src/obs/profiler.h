#ifndef BOLTON_OBS_PROFILER_H_
#define BOLTON_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <ctime>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/sample_ring.h"

namespace bolton {
namespace obs {

/// In-process wall-clock sampling profiler.
///
/// Start() arms one CLOCK_MONOTONIC POSIX timer per registered thread
/// (timer_create with SIGEV_THREAD_ID), each delivering SIGPROF to its
/// thread at the configured frequency. The shared handler captures a raw
/// backtrace(3) into a lock-free StackSampleRing — no locks, no allocation,
/// no symbolization in signal context. Dump() later symbolizes the recorded
/// program counters (backtrace_symbols + demangling; see util/symbolize.h)
/// and aggregates identical stacks for flamegraph/collapsed-stack export.
///
/// Wall-clock, not CPU-time, sampling: a thread blocked in poll() or a
/// mutex is sampled where it blocks, which is what the shards-vs-serial
/// attribution question needs (idle time shows up as idle frames instead of
/// disappearing). Threads participate by registration: the thread calling
/// Start() is registered automatically; worker threads register with a
/// ProfiledThreadScope. Signal-safety rules and sampling-bias caveats are
/// documented in DESIGN.md §10.
///
/// Thread-safe: Start/Stop/Dump/registration may race freely (a mutex
/// serializes control state; the sample path is lock-free).

struct ProfilerOptions {
  /// Sampling frequency per thread. Prefer a prime (the 97 default) so the
  /// sampler does not alias against millisecond-periodic work.
  int hz = 97;
  /// Sample capacity; once full, further samples count as dropped rather
  /// than overwriting (the drop count is reported in every dump).
  size_t max_samples = 1 << 16;
};

/// One aggregated call stack, root (outermost) first, plus how many samples
/// landed in it.
struct ProfileStack {
  std::vector<std::string> frames;
  uint64_t count = 0;
  /// Whether the leaf (innermost) frame resolved to a real symbol.
  bool leaf_resolved = false;
  /// Whether any frame in the stack resolved to a real symbol.
  bool any_resolved = false;
};

/// A symbolized point-in-time view of the sample buffer.
struct ProfileDump {
  int hz = 0;
  uint64_t samples = 0;  // samples aggregated into `stacks`
  uint64_t dropped = 0;  // ring-full drops over the whole run
  uint64_t duration_ns = 0;
  std::vector<ProfileStack> stacks;  // sorted by count, descending
  /// Fraction of samples whose leaf frame / any frame symbolized.
  double leaf_symbolized_fraction = 0.0;
  double any_symbolized_fraction = 0.0;
};

class Profiler {
 public:
  /// The process-wide profiler every surface (CLI flags, /profile endpoint,
  /// BOLTON_PROFILE env) shares; concurrent users are serialized by the
  /// running state (second Start fails until Stop).
  static Profiler& Default();

  /// Arms per-thread sample timers. Fails if already running, if hz is
  /// outside [1, 1000], or if max_samples is 0. Registers the calling
  /// thread. Retains nothing from previous runs: the sample buffer is
  /// reset.
  Status Start(const ProfilerOptions& options = ProfilerOptions());

  /// Disarms all timers and waits for in-flight handlers to drain. The
  /// samples stay available for Dump() until the next Start(). Fails if not
  /// running.
  Status Stop();

  bool running() const;

  /// Committed-sample upper bound; monotone while running. Callers can mark
  /// a position and later Dump(mark) to profile just their window.
  size_t sample_count() const;

  uint64_t dropped() const;

  /// Symbolizes and aggregates samples with index >= from_sample. Safe
  /// while running (in-flight samples are skipped, not torn).
  ProfileDump Dump(size_t from_sample = 0) const;

  /// Thread registration (normally via ProfiledThreadScope). Registering
  /// while running arms a timer immediately; unregistering disarms it.
  void RegisterCurrentThread();
  void UnregisterCurrentThread();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;

  struct ThreadEntry {
    int64_t tid = 0;
    timer_t timer{};
    bool armed = false;
  };

  /// Arms entry's timer at options_.hz. Caller holds mu_.
  void ArmLocked(ThreadEntry* entry);
  void DisarmLocked(ThreadEntry* entry);

  mutable std::mutex mu_;
  bool running_ = false;
  ProfilerOptions options_;
  uint64_t start_ns_ = 0;
  uint64_t stop_ns_ = 0;
  StackSampleRing ring_;
  std::vector<ThreadEntry> threads_;
};

/// RAII registration of the current thread with Profiler::Default(); worker
/// threads (the sharded executor) hold one for their lifetime so profiles
/// attribute their samples. Free (one mutex acquisition each way) when the
/// profiler never runs.
class ProfiledThreadScope {
 public:
  ProfiledThreadScope() { Profiler::Default().RegisterCurrentThread(); }
  ~ProfiledThreadScope() { Profiler::Default().UnregisterCurrentThread(); }

  ProfiledThreadScope(const ProfiledThreadScope&) = delete;
  ProfiledThreadScope& operator=(const ProfiledThreadScope&) = delete;
};

}  // namespace obs
}  // namespace bolton

#endif  // BOLTON_OBS_PROFILER_H_
