#include "obs/ledger.h"

#include "obs/export.h"
#include "obs/telemetry.h"

namespace bolton {
namespace obs {

PrivacyLedger& PrivacyLedger::Default() {
  static PrivacyLedger* ledger = new PrivacyLedger();
  return *ledger;
}

void PrivacyLedger::Record(LedgerEvent event) {
  if (!enabled()) return;
  event.time_ns = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<LedgerEvent> PrivacyLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t PrivacyLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void PrivacyLedger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 1;
}

void PrivacyLedger::Restore(std::vector<LedgerEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t max_seq = 0;
  for (const LedgerEvent& event : events) {
    if (event.seq > max_seq) max_seq = event.seq;
  }
  events_ = std::move(events);
  next_seq_ = max_seq + 1;
}

std::string PrivacyLedger::ToJsonl() const {
  return RenderLedgerJsonl(Snapshot());
}

Status PrivacyLedger::WriteJsonl(const std::string& path) const {
  return internal::WriteStringToFile(path, ToJsonl());
}

}  // namespace obs
}  // namespace bolton
