#include "obs/ledger.h"

#include "obs/telemetry.h"
#include "util/strings.h"

namespace bolton {
namespace obs {

PrivacyLedger& PrivacyLedger::Default() {
  static PrivacyLedger* ledger = new PrivacyLedger();
  return *ledger;
}

void PrivacyLedger::Record(LedgerEvent event) {
  if (!enabled()) return;
  event.time_ns = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<LedgerEvent> PrivacyLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t PrivacyLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void PrivacyLedger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 1;
}

std::string PrivacyLedger::ToJsonl() const {
  std::vector<LedgerEvent> events = Snapshot();
  std::string out;
  for (const LedgerEvent& e : events) {
    out += StrFormat(
        "{\"seq\":%llu,\"time_ns\":%llu,\"kind\":\"%s\",\"mechanism\":\"%s\","
        "\"label\":\"%s\",\"epsilon\":%.17g,\"delta\":%.17g,"
        "\"sensitivity\":%.17g,\"noise_scale\":%.17g,\"noise_norm\":%.17g,"
        "\"dim\":%llu,\"step\":%llu,\"rng_fingerprint\":%llu,"
        "\"accepted\":%s}\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<unsigned long long>(e.time_ns),
        JsonEscape(e.kind).c_str(), JsonEscape(e.mechanism).c_str(),
        JsonEscape(e.label).c_str(), e.epsilon, e.delta, e.sensitivity,
        e.noise_scale, e.noise_norm, static_cast<unsigned long long>(e.dim),
        static_cast<unsigned long long>(e.step),
        static_cast<unsigned long long>(e.rng_fingerprint),
        e.accepted ? "true" : "false");
  }
  return out;
}

Status PrivacyLedger::WriteJsonl(const std::string& path) const {
  return internal::WriteStringToFile(path, ToJsonl());
}

}  // namespace obs
}  // namespace bolton
