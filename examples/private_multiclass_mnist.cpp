// Private multiclass classification on the MNIST-like workload — the
// paper's §4.3 pipeline end to end:
//
//   1. generate the 784-dimensional 10-class dataset,
//   2. Gaussian-random-project 784 → 50 (Theorem 2 makes the Laplace noise
//      linear in d, so fewer dimensions = less noise; the projection is
//      data-independent and therefore free for privacy),
//   3. train one-vs-all with the bolt-on algorithm, splitting the ε budget
//      evenly across the 10 binary models (basic composition),
//   4. report per-class accuracy via the confusion matrix.
#include <cstdio>

#include "data/projection.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"
#include "util/flags.h"

using namespace bolton;

int main(int argc, char** argv) {
  double epsilon = 4.0;
  double scale = 0.25;
  int64_t projected_dim = 50;
  FlagParser flags;
  flags.AddDouble("epsilon", &epsilon,
                  "total budget, split evenly across 10 classes");
  flags.AddDouble("scale", &scale, "dataset scale (1.0 = 60k train rows)");
  flags.AddInt("dim", &projected_dim, "random-projection target dimension");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("private_multiclass_mnist");
    return 0;
  }

  MnistLikeSpec spec;
  spec.scale = scale;
  spec.seed = 21;
  auto split = GenerateMnistLike(spec);
  split.status().CheckOK();

  auto projection = GaussianRandomProjection::Create(
      784, static_cast<size_t>(projected_dim), 22);
  projection.status().CheckOK();
  auto train = projection.value().Apply(split.value().first);
  auto test = projection.value().Apply(split.value().second);
  train.status().CheckOK();
  test.status().CheckOK();
  std::printf("projected %s\n",
              train.value().Summary("mnist-like").c_str());

  TrainerConfig config;
  config.algorithm = Algorithm::kBoltOn;
  config.lambda = 1e-3;  // strongly convex: pass count is privacy-free
  config.passes = 10;
  config.batch_size = 50;
  config.privacy = PrivacyParams{epsilon, 0.0};

  Rng rng(23);
  auto model = TrainMulticlass(train.value(), config, &rng);
  model.status().CheckOK();

  ConfusionMatrix confusion = ComputeConfusion(model.value(), test.value());
  std::printf("\nper-class confusion (rows = true class):\n%s",
              confusion.ToString().c_str());
  std::printf("\noverall test accuracy at eps=%g (eps=%g per class): %.4f\n",
              epsilon, epsilon / 10.0, confusion.Accuracy());

  // The noiseless reference, for the privacy cost at a glance.
  TrainerConfig noiseless = config;
  noiseless.algorithm = Algorithm::kNoiseless;
  Rng rng2(24);
  auto clean = TrainMulticlass(train.value(), noiseless, &rng2);
  clean.status().CheckOK();
  std::printf("noiseless reference accuracy: %.4f\n",
              MulticlassAccuracy(clean.value(), test.value()));
  return 0;
}
