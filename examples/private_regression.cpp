// Private least-squares fitting — the bolt-on method beyond logistic loss.
//
// The squared loss ½(⟨w,x⟩ − y)² + (λ/2)‖w‖² on ±1 targets (the classic
// least-squares classifier) is Lipschitz on the unit feature ball, smooth,
// and λ-strongly convex, so Algorithm 2 applies verbatim: the same
// Δ₂ = 2L/(γmb) calibration privatizes a ridge-style model. This example
// fits one privately, reports RMSE and accuracy against the noiseless fit,
// and persists/reloads the private model with ml/model_io.h.
#include <cmath>
#include <cstdio>

#include "core/private_sgd.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "util/flags.h"

using namespace bolton;

namespace {

double Rmse(const Vector& model, const Dataset& data) {
  double acc = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double r = Dot(model, data[i].x) - data[i].label;
    acc += r * r;
  }
  return std::sqrt(acc / data.size());
}

}  // namespace

int main(int argc, char** argv) {
  double epsilon = 1.0;
  double lambda = 0.01;
  std::string save_path;
  FlagParser flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget (pure eps-DP)");
  flags.AddDouble("lambda", &lambda, "ridge strength (R = 1/lambda)");
  flags.AddString("save", &save_path, "optional path to persist the model");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("private_regression");
    return 0;
  }

  auto split = GenerateCovertypeLike(/*scale=*/0.04, /*seed=*/51);
  split.status().CheckOK();
  const Dataset& train = split.value().first;
  const Dataset& test = split.value().second;
  std::printf("train: %s\n", train.Summary("covertype-like").c_str());

  // Squared loss with ‖x‖ ≤ 1, |y| = 1, ‖w‖ ≤ R = 1/λ:
  // L = R + 1 + λR, β = 1 + λ, γ = λ (see optim/loss.h).
  auto loss = MakeSquaredLoss(lambda, 1.0 / lambda);
  loss.status().CheckOK();

  BoltOnOptions options;
  options.privacy = PrivacyParams{epsilon, 0.0};
  options.passes = 10;
  options.batch_size = 50;
  Rng rng(54);
  auto out = PrivateStronglyConvexPsgd(train, *loss.value(), options, &rng);
  out.status().CheckOK();

  std::printf("\nprivate least-squares model (Algorithm 2, squared loss):\n");
  std::printf("  sensitivity      : %.6f\n", out.value().sensitivity);
  std::printf("  noise norm drawn : %.6f\n", out.value().noise_norm);
  std::printf("  test RMSE        : %.4f (noiseless %.4f)\n",
              Rmse(out.value().model, test),
              Rmse(out.value().noiseless_model, test));
  std::printf("  test accuracy    : %.4f (noiseless %.4f)\n",
              BinaryAccuracy(out.value().model, test),
              BinaryAccuracy(out.value().noiseless_model, test));

  if (!save_path.empty()) {
    SaveModel(out.value().model, save_path).CheckOK();
    auto reloaded = LoadBinaryModel(save_path);
    reloaded.status().CheckOK();
    std::printf("  model persisted to %s and reloaded (%zu weights)\n",
                save_path.c_str(), reloaded.value().dim());
  }
  return 0;
}
