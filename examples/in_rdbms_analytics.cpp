// In-RDBMS analytics demo — the paper's Figure 1 told in code.
//
// Trains the same private model two ways on the engine (the Bismarck-style
// substrate: table + ORDER BY RANDOM() shuffle + UDA epoch loop):
//
//   (B) the bolt-on way: run the engine's SGD driver COMPLETELY UNCHANGED
//       and add one noise draw in the front end — RunBoltOnPrivateDriver()
//       is the "about 10 lines in the Python controller" of §4.2;
//   (C) the white-box way (how SCS13/BST14 must integrate): hook a noise
//       source into the UDA transition function, paying one noise draw per
//       mini-batch update.
//
// Run with --disk to use the paged, larger-than-memory table instead of the
// in-memory one (same code path the Figure 2(b) scalability bench uses).
#include <cstdio>

#include "core/scs13.h"
#include "data/synthetic.h"
#include "engine/bolt_on_driver.h"
#include "ml/metrics.h"
#include "random/dp_noise.h"
#include "util/flags.h"
#include "util/stopwatch.h"

using namespace bolton;

namespace {

// The white-box hook of Figure 1(C): per-update spherical-Laplace noise in
// the transition function, SCS13-style.
class WhiteBoxNoise final : public GradientNoiseSource {
 public:
  WhiteBoxNoise(double sensitivity, double epsilon_per_step)
      : sensitivity_(sensitivity), epsilon_(epsilon_per_step) {}
  Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
    return SampleSphericalLaplace(dim, sensitivity_, epsilon_, rng);
  }

 private:
  double sensitivity_;
  double epsilon_;
};

}  // namespace

int main(int argc, char** argv) {
  bool disk = false;
  double epsilon = 1.0;
  int64_t rows = 50000;
  FlagParser flags;
  flags.AddBool("disk", &disk, "use the paged disk table (Fig. 2b mode)");
  flags.AddDouble("epsilon", &epsilon, "privacy budget");
  flags.AddInt("rows", &rows, "table size");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("in_rdbms_analytics");
    return 0;
  }

  auto data = GenerateTwoGaussians(static_cast<size_t>(rows), 50, 1.5, 11);
  data.status().CheckOK();

  auto table = MakeTable(data.value(),
                         disk ? StorageMode::kDisk : StorageMode::kMemory,
                         "/tmp/bolton_example_table.bin", 4096);
  table.status().CheckOK();
  std::printf("table: %zu rows x %zu features (%s)\n",
              table.value()->num_rows(), table.value()->dim(),
              disk ? "disk-backed, paged" : "in-memory");

  const double lambda = 1e-3;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda);
  loss.status().CheckOK();

  // --- (B) bolt-on: black-box driver + one noise draw at the end. The
  // strongly convex sensitivity is pass-oblivious, so we can even stop on
  // convergence (tolerance) without spending extra privacy. ---
  BoltOnOptions options;
  options.privacy = PrivacyParams{epsilon, 0.0};
  options.passes = 20;  // cap K; the tolerance usually stops earlier
  options.batch_size = 10;
  Rng rng(3);
  Stopwatch bolt_on_watch;
  auto bolt_on = RunBoltOnPrivateDriver(table.value().get(), *loss.value(),
                                        options, /*tolerance=*/0.01, &rng);
  bolt_on.status().CheckOK();
  double bolt_on_seconds = bolt_on_watch.ElapsedSeconds();

  std::printf("\n(B) bolt-on integration (black box + 1 noise draw):\n");
  std::printf("  epochs run            : %zu (stopped on convergence)\n",
              bolt_on.value().driver.epochs_run);
  std::printf("  per-step noise draws  : %zu\n",
              bolt_on.value().driver.stats.noise_samples);
  std::printf("  sensitivity used      : %.6f\n",
              bolt_on.value().private_output.sensitivity);
  std::printf("  wall time             : %.3fs\n", bolt_on_seconds);
  std::printf("  test accuracy (train) : %.4f\n",
              BinaryAccuracy(bolt_on.value().private_output.model,
                             data.value()));

  // --- (C) white-box integration: per-update noise inside the UDA, the
  // change SCS13/BST14 force into the engine's C code. ---
  const size_t passes = bolt_on.value().driver.epochs_run;
  WhiteBoxNoise noise(2.0 * loss.value()->lipschitz() / 10.0,
                      epsilon / static_cast<double>(passes));
  auto schedule = MakeInverseSqrtStep(1.0);
  schedule.status().CheckOK();
  DriverOptions driver_options;
  driver_options.max_epochs = passes;
  driver_options.batch_size = 10;
  driver_options.radius = loss.value()->radius();
  Rng rng_white(4);
  Stopwatch white_watch;
  auto white = RunSgdDriver(table.value().get(), *loss.value(),
                            *schedule.value(), driver_options, &rng_white,
                            &noise);
  white.status().CheckOK();
  double white_seconds = white_watch.ElapsedSeconds();

  std::printf("\n(C) white-box integration (noise in the UDA transition):\n");
  std::printf("  per-step noise draws  : %zu\n",
              white.value().stats.noise_samples);
  std::printf("  wall time             : %.3fs (%.2fx the bolt-on run)\n",
              white_seconds, white_seconds / bolt_on_seconds);
  std::printf("  test accuracy (train) : %.4f\n",
              BinaryAccuracy(white.value().model, data.value()));
  return 0;
}
