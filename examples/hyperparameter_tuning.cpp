// Private hyperparameter tuning — Algorithm 3 in action.
//
// Differential privacy must cover EVERYTHING the data touches, including
// the choice of hyperparameters. This example tunes (k, λ) for the bolt-on
// trainer two ways and compares:
//
//   * PublicGridSearch — legitimate only when a public validation set
//     drawn from the same distribution exists;
//   * PrivatelyTunedSgd — the paper's Algorithm 3: disjoint data portions
//     per candidate plus an exponential-mechanism winner selection, giving
//     end-to-end privacy with NO public data.
#include <cstdio>

#include "core/private_tuning.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"
#include "util/flags.h"

using namespace bolton;

int main(int argc, char** argv) {
  double epsilon = 0.2;
  FlagParser flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("hyperparameter_tuning");
    return 0;
  }

  auto split = GenerateCovertypeLike(/*scale=*/0.05, /*seed=*/31);
  split.status().CheckOK();
  const Dataset& train = split.value().first;
  const Dataset& test = split.value().second;
  std::printf("train: %s\n", train.Summary("covertype-like").c_str());

  // The paper's grid: k in {5, 10}, lambda in {1e-4, 1e-3, 1e-2}, b = 50.
  std::vector<TuningCandidate> grid =
      MakeTuningGrid({5, 10}, {50}, {1e-4, 1e-3, 1e-2});
  std::printf("grid: %zu candidates (k x lambda)\n\n", grid.size());

  TuningTrainFn train_fn = [epsilon](const Dataset& portion,
                                     const TuningCandidate& candidate,
                                     Rng* rng) -> Result<Vector> {
    TrainerConfig config;
    config.algorithm = Algorithm::kBoltOn;
    config.lambda = candidate.lambda;
    config.passes = candidate.passes;
    config.batch_size = std::min(candidate.batch_size, portion.size());
    config.privacy = PrivacyParams{epsilon, 0.0};
    return TrainBinary(portion, config, rng);
  };

  // Private tuning: train each candidate on its own disjoint portion and
  // select with the exponential mechanism over held-out error counts.
  Rng rng(32);
  auto tuned = PrivatelyTunedSgd(train, grid, PrivacyParams{epsilon, 0.0},
                                 train_fn, &rng);
  tuned.status().CheckOK();
  const TuningCandidate& winner = grid[tuned.value().selected_index];
  std::printf("Algorithm 3 picked candidate #%zu (k=%zu, lambda=%g)\n",
              tuned.value().selected_index, winner.passes, winner.lambda);
  std::printf("  held-out errors per candidate:");
  for (size_t e : tuned.value().error_counts) std::printf(" %zu", e);
  std::printf("\n  test accuracy: %.4f\n\n",
              BinaryAccuracy(tuned.value().model, test));

  // Public tuning for comparison (uses the test split as a stand-in public
  // set — only legitimate because this data is synthetic).
  Rng rng2(33);
  auto public_tuned = PublicGridSearch(train, test, grid, train_fn, &rng2);
  public_tuned.status().CheckOK();
  const TuningCandidate& pub = grid[public_tuned.value().selected_index];
  std::printf("public grid search picked candidate #%zu (k=%zu, lambda=%g)\n",
              public_tuned.value().selected_index, pub.passes, pub.lambda);
  std::printf("  test accuracy: %.4f\n",
              BinaryAccuracy(public_tuned.value().model, test));
  std::printf("\nNote: public tuning trains on ALL rows; Algorithm 3 gives\n"
              "each candidate only 1/%zu of them — that accuracy gap is the\n"
              "price of tuning privately (compare Figures 3 and 6).\n",
              grid.size() + 1);
  return 0;
}
