// Quickstart: train a differentially private logistic-regression model with
// the bolt-on method (Algorithm 2) and compare it against the noiseless
// model it perturbs.
//
//   ./quickstart [--epsilon=1.0] [--lambda=0.01] [--passes=10]
//
// The bolt-on workflow is three steps:
//   1. build a loss with the paper's constants (L, β, γ derived for you),
//   2. run ordinary permutation-based SGD as a black box,
//   3. add one noise vector calibrated to the run's L2-sensitivity.
// PrivatePsgd() does all three; everything it used is reported back.
#include <cstdio>

#include "core/private_sgd.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/flags.h"

using namespace bolton;

int main(int argc, char** argv) {
  double epsilon = 1.0;
  double lambda = 0.01;
  int64_t passes = 10;
  FlagParser flags;
  flags.AddDouble("epsilon", &epsilon, "privacy budget (pure eps-DP)");
  flags.AddDouble("lambda", &lambda, "L2 regularization (R is set to 1/lambda)");
  flags.AddInt("passes", &passes, "SGD passes over the data");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("quickstart");
    return 0;
  }

  // A binary classification dataset, features normalized to the unit ball
  // (the preprocessing the paper's sensitivity analysis assumes).
  auto split = GenerateProteinLike(/*scale=*/0.2, /*seed=*/42);
  split.status().CheckOK();
  const Dataset& train = split.value().first;
  const Dataset& test = split.value().second;
  std::printf("train: %s\n", train.Summary("protein-like").c_str());

  // L2-regularized logistic regression; the constants (L = 1 + lambda*R,
  // beta = 1 + lambda, gamma = lambda) come from the paper's Section 2.
  auto loss = MakeLogisticLoss(lambda, /*radius=*/1.0 / lambda);
  loss.status().CheckOK();

  BoltOnOptions options;
  options.privacy = PrivacyParams{epsilon, /*delta=*/0.0};
  options.passes = static_cast<size_t>(passes);
  options.batch_size = 50;

  Rng rng(7);
  auto result = PrivatePsgd(train, *loss.value(), options, &rng);
  result.status().CheckOK();

  const PrivateSgdOutput& out = result.value();
  std::printf("\nAlgorithm 2 (strongly convex bolt-on):\n");
  std::printf("  L2-sensitivity        : %.6f   (Delta2 = 2L/(gamma*m*b))\n",
              out.sensitivity);
  std::printf("  noise norm drawn      : %.6f\n", out.noise_norm);
  std::printf("  gradient evaluations  : %zu\n",
              out.stats.gradient_evaluations);
  std::printf("  per-step noise draws  : %zu   (bolt-on: always zero)\n",
              out.stats.noise_samples);
  std::printf("\nTest accuracy:\n");
  std::printf("  noiseless model       : %.4f\n",
              BinaryAccuracy(out.noiseless_model, test));
  std::printf("  %.4g-DP private model : %.4f\n", epsilon,
              BinaryAccuracy(out.model, test));
  return 0;
}
