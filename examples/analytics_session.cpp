// A private analytics session — the multi-query story of §4.6.
//
// A deployed in-RDBMS analytics system answers MANY private queries
// against the same table, and the total privacy loss composes. This
// example runs a session end to end:
//
//   1. register the training table in the engine's catalog,
//   2. open a PrivacyAccountant with the session's total (ε, δ) budget,
//   3. answer a private COUNT, a private feature-mean vector, and train a
//      private model, charging each release to the accountant,
//   4. show the accountant refusing a query that would overspend.
#include <cstdio>

#include "core/accountant.h"
#include "data/synthetic.h"
#include "engine/bolt_on_driver.h"
#include "engine/catalog.h"
#include "engine/private_aggregates.h"
#include "ml/metrics.h"
#include "util/flags.h"

using namespace bolton;

int main(int argc, char** argv) {
  double total_epsilon = 1.0;
  FlagParser flags;
  flags.AddDouble("budget", &total_epsilon, "session-wide epsilon budget");
  flags.Parse(argc, argv).CheckOK();
  if (flags.help_requested()) {
    flags.PrintHelp("analytics_session");
    return 0;
  }

  // 1. The catalog holds the session's tables.
  auto split = GenerateCovertypeLike(/*scale=*/0.03, /*seed=*/61);
  split.status().CheckOK();
  Catalog catalog;
  catalog.CreateTable("forest", split.value().first, StorageMode::kMemory)
      .CheckOK();
  Table* table = catalog.Get("forest").MoveValue();
  std::printf("catalog tables:");
  for (const auto& name : catalog.ListTables()) {
    std::printf(" %s(%zu rows)", name.c_str(), table->num_rows());
  }
  std::printf("\n");

  // 2. One budget for the whole session.
  PrivacyAccountant accountant(PrivacyParams{total_epsilon, 0.0});
  Rng rng(62);

  // 3a. Private COUNT (cheap: spend 5% of the budget).
  PrivacyParams count_budget{0.05 * total_epsilon, 0.0};
  accountant.Charge(count_budget, "count(forest)").CheckOK();
  auto count = PrivateCount(*table, count_budget, &rng);
  count.status().CheckOK();
  std::printf("private COUNT  : %.1f (true %zu)\n", count.value().noisy,
              table->num_rows());

  // 3b. Private feature means (15%).
  PrivacyParams mean_budget{0.15 * total_epsilon, 0.0};
  accountant.Charge(mean_budget, "avg(features)").CheckOK();
  auto means = PrivateFeatureMeans(*table, mean_budget, &rng);
  means.status().CheckOK();
  std::printf("private AVG    : d=%zu vector released (||.||=%.3f)\n",
              means.value().dim(), means.value().Norm());

  // 3c. Private model (the remaining 80%), trained through the engine's
  // black-box bolt-on driver.
  PrivacyParams model_budget{0.8 * total_epsilon, 0.0};
  accountant.Charge(model_budget, "train(logistic)").CheckOK();
  const double lambda = 1e-3;
  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda);
  loss.status().CheckOK();
  BoltOnOptions options;
  options.privacy = model_budget;
  options.passes = 20;
  options.batch_size = 10;
  auto model = RunBoltOnPrivateDriver(table, *loss.value(), options,
                                      /*tolerance=*/0.01, &rng);
  model.status().CheckOK();
  std::printf("private MODEL  : test accuracy %.4f (epochs run: %zu)\n",
              BinaryAccuracy(model.value().private_output.model,
                             split.value().second),
              model.value().driver.epochs_run);

  // 4. The budget is now exhausted; further queries are refused.
  Status refused =
      accountant.Charge(PrivacyParams{0.01, 0.0}, "one-more-query");
  std::printf("\n%s", accountant.LedgerToString().c_str());
  std::printf("extra query    : %s\n", refused.ToString().c_str());
  return 0;
}
