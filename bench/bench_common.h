#ifndef BOLTON_BENCH_BENCH_COMMON_H_
#define BOLTON_BENCH_BENCH_COMMON_H_

// Shared harness for the per-figure/per-table benchmark binaries.
//
// Every accuracy bench reproduces one figure of the paper by printing its
// series as aligned text rows. Dataset sizes default to laptop-friendly
// scales (minutes for the full suite); pass --scale to grow them toward the
// paper's sizes. Seeds are fixed so runs are reproducible.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/privacy.h"
#include "data/dataset.h"
#include "data/projection.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/trainer.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bolton {
namespace bench {

/// The four test scenarios of §4.3.
struct TestScenario {
  int id;                 // 1..4
  bool strongly_convex;   // tests 3, 4
  bool approx_dp;         // tests 2, 4 ((ε,δ)-DP)
  const char* label;
};

inline const std::vector<TestScenario>& AllScenarios() {
  static const std::vector<TestScenario> kScenarios = {
      {1, false, false, "Test1: Convex, eps-DP"},
      {2, false, true, "Test2: Convex, (eps,delta)-DP"},
      {3, true, false, "Test3: Strongly Convex, eps-DP"},
      {4, true, true, "Test4: Strongly Convex, (eps,delta)-DP"},
  };
  return kScenarios;
}

/// The ε grids of §4.3: multiclass MNIST uses 10× larger budgets because
/// the budget is split across 10 one-vs-all models.
inline std::vector<double> EpsilonGridFor(const std::string& dataset) {
  if (dataset == "mnist") return {0.1, 0.2, 0.5, 1.0, 2.0, 4.0};
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
}

/// δ = 1/m² (§4.3).
inline double DeltaFor(size_t m) {
  double md = static_cast<double>(m);
  return 1.0 / (md * md);
}

/// A loaded benchmark dataset: train/test plus bookkeeping.
struct BenchData {
  std::string name;
  Dataset train;
  Dataset test;
  bool multiclass = false;
};

/// Default scaled-down sizes per dataset so the full bench suite stays
/// fast; --scale multiplies all of them.
inline double DefaultScaleFor(const std::string& dataset) {
  if (dataset == "mnist") return 0.25;      // 15000 / 2500, d=784→50
  // (MNIST needs the largest default: its ε splits 10 ways across the
  // one-vs-all models, so small m drowns every private algorithm in noise.)
  if (dataset == "protein") return 0.20;    // 7287 / 7287
  if (dataset == "covertype") return 0.02;  // 9960 / 1660
  if (dataset == "higgs") return 0.002;     // 21000 / 1000
  if (dataset == "kddcup") return 0.02;     // 9880 / 6220
  return 0.05;
}

/// Generates a dataset by name at `scale_multiplier` × its default scale,
/// applying the paper's 784 → 50 random projection for MNIST.
inline Result<BenchData> LoadBenchData(const std::string& name,
                                       double scale_multiplier,
                                       uint64_t seed) {
  BOLTON_ASSIGN_OR_RETURN(
      auto split,
      GenerateByName(name, DefaultScaleFor(name) * scale_multiplier, seed));
  BenchData out;
  out.name = name;
  out.multiclass = name == "mnist";
  if (out.multiclass) {
    BOLTON_ASSIGN_OR_RETURN(
        auto projection,
        GaussianRandomProjection::Create(784, 50, seed + 1));
    BOLTON_ASSIGN_OR_RETURN(out.train, projection.Apply(split.first));
    BOLTON_ASSIGN_OR_RETURN(out.test, projection.Apply(split.second));
  } else {
    out.train = std::move(split.first);
    out.test = std::move(split.second);
  }
  return out;
}

/// Trains per the config (binary or one-vs-all as the data demands) and
/// returns test accuracy.
inline Result<double> TrainAndScore(const BenchData& data,
                                    const TrainerConfig& config, Rng* rng) {
  if (data.multiclass) {
    BOLTON_ASSIGN_OR_RETURN(MulticlassModel model,
                            TrainMulticlass(data.train, config, rng));
    return MulticlassAccuracy(model, data.test);
  }
  BOLTON_ASSIGN_OR_RETURN(Vector model, TrainBinary(data.train, config, rng));
  return BinaryAccuracy(model, data.test);
}

/// The Figure 3 / Figure 6 row config: λ = 1e-4 where applicable, b = 50,
/// k = 10 passes (the Figure 3 caption's fixed values).
inline TrainerConfig ScenarioConfig(const TestScenario& scenario,
                                    Algorithm algorithm, double epsilon,
                                    size_t m) {
  TrainerConfig config;
  config.algorithm = algorithm;
  config.lambda = scenario.strongly_convex ? 1e-4 : 0.0;
  config.passes = 10;
  config.batch_size = 50;
  config.privacy.epsilon = epsilon;
  config.privacy.delta = scenario.approx_dp ? DeltaFor(m) : 0.0;
  return config;
}

/// Which algorithms a scenario compares (BST14 needs δ > 0).
inline std::vector<Algorithm> AlgorithmsFor(const TestScenario& scenario) {
  std::vector<Algorithm> algos = {Algorithm::kNoiseless, Algorithm::kBoltOn,
                                  Algorithm::kScs13};
  if (scenario.approx_dp) algos.push_back(Algorithm::kBst14);
  return algos;
}

/// Prints one aligned accuracy row: epsilon followed by per-algorithm
/// columns (blank for algorithms a scenario does not support).
inline void PrintAccuracyHeader() {
  std::printf("  %-8s %-10s %-10s %-10s %-10s\n", "epsilon", "noiseless",
              "ours", "scs13", "bst14");
}

inline void PrintAccuracyRow(double epsilon,
                             const std::vector<double>& accuracies,
                             bool has_bst14) {
  std::printf("  %-8.3g %-10.4f %-10.4f %-10.4f ", epsilon, accuracies[0],
              accuracies[1], accuracies[2]);
  if (has_bst14) {
    std::printf("%-10.4f\n", accuracies[3]);
  } else {
    std::printf("%-10s\n", "-");
  }
}

/// Times `fn` and emits a trace span named `name` (with a hardware-counter
/// delta attached when the perf pillar is on), so one-off bench timings
/// flow through the same recorder/exporter as the library's own spans
/// instead of a hand-rolled stopwatch.
template <typename Fn>
inline double TimedSeconds(const char* name, Fn&& fn) {
  obs::ScopedSpan span(name);
  obs::CounterScope counters(&span);
  const uint64_t start_ns = obs::MonotonicNanos();
  fn();
  return static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9;
}

/// Dumps whatever telemetry is enabled: metrics text to stderr (stdout
/// carries the figure rows), trace/ledger JSONL to the given paths when
/// non-empty.
inline void DumpTelemetry(bool metrics, const std::string& trace_out,
                          const std::string& ledger_out) {
  if (metrics) {
    obs::UpdateProcessMemoryGauges();
    obs::UpdatePerfGauges();
    std::fprintf(stderr, "%s",
                 obs::MetricsRegistry::Default().Snapshot().ToText().c_str());
  }
  if (!trace_out.empty()) {
    Status status = obs::TraceRecorder::Default().WriteJsonl(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (!ledger_out.empty()) {
    Status status = obs::PrivacyLedger::Default().WriteJsonl(ledger_out);
    if (!status.ok()) {
      std::fprintf(stderr, "ledger export failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

/// google-benchmark binaries (and any bench run where editing flags is
/// awkward) pick up the structured-logging surfaces from the environment:
/// BOLTON_LOG_JSONL=FILE mirrors every log event to FILE as JSONL, and
/// BOLTON_POSTMORTEM_DIR=DIR arms the crash handler so a dying bench leaves
/// a bolton-postmortem-v1 report behind. Both are no-ops when unset.
inline void EnableCrashReportingFromEnv() {
  const char* jsonl = std::getenv("BOLTON_LOG_JSONL");
  if (jsonl != nullptr && jsonl[0] != '\0') {
    Status status = OpenLogJsonlFile(jsonl);
    if (!status.ok()) {
      std::fprintf(stderr, "BOLTON_LOG_JSONL ignored: %s\n",
                   status.ToString().c_str());
    }
  }
  const char* dir = std::getenv("BOLTON_POSTMORTEM_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    obs::PostmortemOptions options;
    options.dir = dir;
    Status status = obs::InstallCrashHandler(options);
    if (!status.ok()) {
      std::fprintf(stderr, "BOLTON_POSTMORTEM_DIR ignored: %s\n",
                   status.ToString().c_str());
    }
  }
}

/// google-benchmark binaries have no FlagParser pass; BOLTON_TELEMETRY=1 in
/// the environment turns on all three pillars instead. Returns whether it
/// did, so main can DumpTelemetry at shutdown. BOLTON_OBS_PORT=N
/// additionally serves the live observability endpoint on 127.0.0.1:N
/// (N=0 for an ephemeral port, printed to stderr) for the whole run.
inline bool EnableTelemetryFromEnv() {
  bool enabled = false;
  EnableCrashReportingFromEnv();
  const char* env = std::getenv("BOLTON_TELEMETRY");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    obs::SetAllEnabled(true);
    enabled = true;
  }
  const char* obs_port = std::getenv("BOLTON_OBS_PORT");
  if (obs_port != nullptr && obs_port[0] != '\0') {
    auto port = ParseInt(obs_port);
    if (port.ok() && port.value() >= 0) {
      obs::SetAllEnabled(true);
      enabled = true;
      Status status =
          obs::StartDefaultObsServer(static_cast<int>(port.value()));
      if (status.ok()) {
        std::fprintf(stderr, "obs server listening on 127.0.0.1:%d\n",
                     obs::DefaultObsServer()->port());
      } else {
        std::fprintf(stderr, "obs server failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }
  return enabled;
}

/// BOLTON_PROFILE=HZ starts the in-process sampling profiler for the whole
/// bench run (1 means "on at the default 97 Hz"; any other value in
/// [2, 1000] is the frequency). Returns whether it started, so main can
/// FinishProfilerFromEnv at shutdown. While the profiler runs, every
/// AddBenchResult row carries a compact profile summary of its window —
/// that is how boltondp-bench-v1 baselines pick up per-configuration
/// profiles for tools/benchdiff.py.
inline bool EnableProfilerFromEnv() {
  const char* env = std::getenv("BOLTON_PROFILE");
  if (env == nullptr || env[0] == '\0') return false;
  auto hz = ParseInt(env);
  if (!hz.ok() || hz.value() <= 0) return false;
  obs::ProfilerOptions options;
  if (hz.value() > 1) options.hz = static_cast<int>(hz.value());
  Status status = obs::Profiler::Default().Start(options);
  if (!status.ok()) {
    std::fprintf(stderr, "BOLTON_PROFILE ignored: %s\n",
                 status.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "profiler sampling at %dHz (BOLTON_PROFILE)\n",
               options.hz);
  return true;
}

/// Stops a running profiler and writes the whole-run collapsed-stack
/// profile to `out_override`, or — when empty — to BOLTON_PROFILE_OUT
/// (default "bench_profile.collapsed" in the working directory).
inline void FinishProfiler(const std::string& out_override = "") {
  obs::Profiler& profiler = obs::Profiler::Default();
  if (!profiler.running()) return;
  profiler.Stop().CheckOK();
  const obs::ProfileDump dump = profiler.Dump();
  std::string out = out_override;
  if (out.empty()) {
    const char* out_env = std::getenv("BOLTON_PROFILE_OUT");
    out = (out_env != nullptr && out_env[0] != '\0')
              ? out_env
              : "bench_profile.collapsed";
  }
  Status status =
      obs::internal::WriteStringToFile(out, obs::RenderCollapsed(dump));
  if (!status.ok()) {
    std::fprintf(stderr, "profile export failed: %s\n",
                 status.ToString().c_str());
    return;
  }
  std::fprintf(stderr,
               "wrote profile (%llu samples @ %dHz, %.0f%% symbolized, "
               "%llu dropped) -> %s\n",
               static_cast<unsigned long long>(dump.samples), dump.hz,
               dump.leaf_symbolized_fraction * 100.0,
               static_cast<unsigned long long>(dump.dropped), out.c_str());
}

inline void FinishProfilerFromEnv() { FinishProfiler(); }

/// -------- Machine-readable bench results (the perf-trajectory pipeline)
///
/// Benches accumulate one row per measured configuration; `--json-out=FILE`
/// writes them as a single JSON document that tools/benchdiff.py can merge
/// into BENCH_*.json baselines and diff for throughput regressions. Rows
/// are recorded unconditionally (a handful of strings per run); only the
/// file write is gated on the flag.
struct BenchResultRow {
  std::string figure;    // "fig2_scalability"
  std::string name;      // unique series key within the figure
  std::string dataset;
  std::string algo;
  double epsilon = 0.0;      // 0 when not applicable
  double wall_seconds = 0.0; // < 0 when not measured
  double rows_per_sec = 0.0; // examples processed per second; 0 = n/a
  double accuracy = -1.0;    // test accuracy; < 0 = n/a
  /// Pre-rendered boltondp-profile-v1 JSON object for the samples taken
  /// since the previous row was recorded; empty when the profiler was not
  /// running. Emitted as the row's optional "profile" field — old
  /// baselines without it still merge/diff cleanly.
  std::string profile_json;
  /// Pre-rendered counter-delta JSON (RenderPerfCountersJson) covering the
  /// process-total counter movement since the previous row; empty when the
  /// perf pillar is off. Emitted as the optional "counters" field —
  /// {"available":false,...} in counter-less environments, so a missing
  /// PMU reads as an explicit fact, not a hole in the schema.
  std::string counters_json;
};

inline std::vector<BenchResultRow>& BenchResults() {
  static std::vector<BenchResultRow>* rows = new std::vector<BenchResultRow>();
  return *rows;
}

/// Frames kept in a per-row profile summary; rows stay compact because a
/// baseline file accumulates hundreds of them.
constexpr size_t kRowProfileTopFrames = 5;

inline void AddBenchResult(BenchResultRow row) {
  obs::Profiler& profiler = obs::Profiler::Default();
  if (profiler.running() && row.profile_json.empty()) {
    // Attribute the samples since the last row to this row: benches record
    // a row right after measuring it, so the window between AddBenchResult
    // calls is exactly the row's work.
    static size_t next_from = 0;
    const size_t mark = profiler.sample_count();
    row.profile_json =
        obs::RenderProfileSummaryJson(profiler.Dump(next_from),
                                      kRowProfileTopFrames);
    next_from = mark;
  }
  if (obs::PerfCountersEnabled() && row.counters_json.empty()) {
    // Same windowing as the profile: the counter movement since the last
    // row is this row's work (benches record right after measuring).
    static obs::PerfCounterDelta last_totals;
    const obs::PerfCounterDelta totals = obs::ProcessPerfTotals();
    row.counters_json = obs::RenderPerfCountersJson(totals - last_totals);
    last_totals = totals;
  }
  BenchResults().push_back(std::move(row));
}

inline std::string BenchResultsToJson() {
  // The build object pins every baseline to the binary that produced it, so
  // a benchdiff regression can be traced to a compiler/SIMD/sha change
  // instead of being mistaken for a code regression.
  std::string out = "{\"schema\":\"boltondp-bench-v1\",\"build\":";
  out += obs::RenderBuildInfoJson();
  out += ",\"results\":[";
  bool first = true;
  for (const BenchResultRow& r : BenchResults()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\n {\"figure\":\"%s\",\"name\":\"%s\",\"dataset\":\"%s\","
        "\"algo\":\"%s\",\"epsilon\":%.17g,\"wall_seconds\":%.17g,"
        "\"rows_per_sec\":%.17g,\"accuracy\":%.17g",
        obs::JsonEscape(r.figure).c_str(), obs::JsonEscape(r.name).c_str(),
        obs::JsonEscape(r.dataset).c_str(), obs::JsonEscape(r.algo).c_str(),
        r.epsilon, r.wall_seconds, r.rows_per_sec, r.accuracy);
    if (!r.profile_json.empty()) {
      // Already-rendered JSON object; embedded verbatim, not re-escaped.
      out += ",\"profile\":";
      out += r.profile_json;
    }
    if (!r.counters_json.empty()) {
      out += ",\"counters\":";
      out += r.counters_json;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

/// Standard flags shared by the accuracy benches.
struct CommonFlags {
  double scale = 1.0;    // multiplies the per-dataset default scale
  int64_t repeats = 3;   // accuracy is averaged over this many seeds
  int64_t seed = 7;
  std::string datasets = "mnist,protein,covertype";
  bool metrics = false;
  std::string trace_out;
  std::string ledger_out;
  std::string json_out;
  int64_t serve_obs = -1;
  std::string profile_out;
  int64_t profile_hz = 0;
  std::string log_jsonl;
  std::string postmortem_dir;

  Status Parse(int argc, char** argv, const char* program) {
    FlagParser parser;
    parser.AddDouble("scale", &scale,
                     "multiplier on the default dataset scale");
    parser.AddInt("repeats", &repeats, "seeds to average accuracy over");
    parser.AddInt("seed", &seed, "base RNG seed");
    parser.AddString("datasets", &datasets, "comma-separated dataset list");
    parser.AddBool("metrics", &metrics,
                   "print a metrics dump to stderr on exit");
    parser.AddString("trace-out", &trace_out,
                     "write trace spans as JSONL to this file on exit");
    parser.AddString("ledger-out", &ledger_out,
                     "write the privacy-spend ledger as JSONL on exit");
    parser.AddString("json-out", &json_out,
                     "write machine-readable result rows as JSON on exit "
                     "(tools/benchdiff.py consumes these)");
    parser.AddInt("serve-obs", &serve_obs,
                  "serve live observability HTTP on 127.0.0.1:PORT for the "
                  "run (0 = ephemeral, -1 = off)");
    parser.AddString("profile-out", &profile_out,
                     "sample the whole run and write a collapsed-stack "
                     "profile here; rows in --json-out gain per-row "
                     "profile summaries");
    parser.AddInt("profile-hz", &profile_hz,
                  "per-thread sampling frequency for --profile-out "
                  "(0 = the 97Hz default)");
    parser.AddString("log-jsonl", &log_jsonl,
                     "mirror every log event to this file as JSONL");
    parser.AddString("postmortem-dir", &postmortem_dir,
                     "arm the crash handler; a crash leaves a "
                     "bolton-postmortem-v1 report in this directory");
    BOLTON_RETURN_IF_ERROR(parser.Parse(argc, argv));
    if (parser.help_requested()) {
      parser.PrintHelp(program);
      std::exit(0);
    }
    EnableCrashReportingFromEnv();
    if (!log_jsonl.empty()) BOLTON_RETURN_IF_ERROR(OpenLogJsonlFile(log_jsonl));
    if (!postmortem_dir.empty()) {
      obs::PostmortemOptions postmortem;
      postmortem.dir = postmortem_dir;
      BOLTON_RETURN_IF_ERROR(obs::InstallCrashHandler(postmortem));
    }
    // Benches always run with the counter pillar on: rows in --json-out
    // carry per-row counter deltas (an explicit {"available":false,...}
    // object when the PMU is unreachable), and the per-scope reads are two
    // fd reads per span — noise at bench granularity.
    obs::SetCurrentThreadName("main");
    obs::SetPerfCountersEnabled(true);
    if (metrics) obs::SetMetricsEnabled(true);
    if (!trace_out.empty()) obs::TraceRecorder::Default().SetEnabled(true);
    if (!ledger_out.empty()) obs::PrivacyLedger::Default().SetEnabled(true);
    if (serve_obs >= 0) {
      obs::SetAllEnabled(true);
      BOLTON_RETURN_IF_ERROR(
          obs::StartDefaultObsServer(static_cast<int>(serve_obs)));
      std::fprintf(stderr, "obs server listening on 127.0.0.1:%d\n",
                   obs::DefaultObsServer()->port());
    }
    if (!profile_out.empty() || profile_hz > 0) {
      obs::ProfilerOptions options;
      if (profile_hz > 0) options.hz = static_cast<int>(profile_hz);
      BOLTON_RETURN_IF_ERROR(obs::Profiler::Default().Start(options));
    } else {
      EnableProfilerFromEnv();
    }
    return Status::OK();
  }

  std::vector<std::string> DatasetList() const {
    return StrSplit(datasets, ',');
  }

  /// Every bench exports on exit without per-binary dump code.
  ~CommonFlags() {
    FinishProfiler(profile_out);  // no-op when the profiler never started
    DumpTelemetry(metrics, trace_out, ledger_out);
    if (!json_out.empty()) {
      Status status =
          obs::internal::WriteStringToFile(json_out, BenchResultsToJson());
      if (!status.ok()) {
        std::fprintf(stderr, "bench json export failed: %s\n",
                     status.ToString().c_str());
      } else {
        std::fprintf(stderr, "wrote %zu bench result rows -> %s\n",
                     BenchResults().size(), json_out.c_str());
      }
    }
    obs::StopDefaultObsServer();
  }
};

/// Mean test accuracy over `repeats` seeds.
inline Result<double> MeanAccuracy(const BenchData& data,
                                   const TrainerConfig& config, int repeats,
                                   uint64_t seed_base) {
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(seed_base + 1000 * r);
    BOLTON_ASSIGN_OR_RETURN(double acc, TrainAndScore(data, config, &rng));
    total += acc;
  }
  return total / repeats;
}

}  // namespace bench
}  // namespace bolton

#endif  // BOLTON_BENCH_BENCH_COMMON_H_
