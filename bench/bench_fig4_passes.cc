// Figure 4 — the effect of the pass count and of the mini-batch size on the
// MNIST-like workload.
//
// (a) Convex ε-DP with b = 1: more passes ⇒ more noise (Δ₂ = 2kLη) ⇒
//     WORSE accuracy.
// (b) Strongly convex ε-DP with b = 50: Δ₂ = 2L/(γm) is pass-oblivious, so
//     more passes only improve convergence ⇒ BETTER (or equal) accuracy.
// (c) Convex ε-DP with k = 20: growing the batch from 1 to 10 to 50 divides
//     the noise by b and drastically recovers accuracy.
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

void PrintSweep(const char* title, const BenchData& data,
                const std::vector<size_t>& passes_grid, size_t batch,
                double lambda, int repeats, uint64_t seed) {
  std::printf("%s\n", title);
  std::printf("  %-8s", "epsilon");
  for (size_t k : passes_grid) std::printf(" %zu-pass%s ", k, k == 1 ? " " : "");
  std::printf("\n");
  for (double epsilon : EpsilonGridFor("mnist")) {
    std::printf("  %-8.3g", epsilon);
    for (size_t k : passes_grid) {
      TrainerConfig config;
      config.algorithm = Algorithm::kBoltOn;
      config.lambda = lambda;
      config.passes = k;
      config.batch_size = batch;
      config.privacy = PrivacyParams{epsilon, 0.0};
      auto acc = MeanAccuracy(data, config, repeats, seed + k);
      acc.status().CheckOK();
      std::printf(" %-8.4f", acc.value());
    }
    std::printf("\n");
  }
}

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig4_passes").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  auto data = LoadBenchData("mnist", flags.scale, flags.seed);
  data.status().CheckOK();
  std::printf("== Figure 4: Effect of passes and mini-batch size "
              "(mnist-like, m=%zu) ==\n\n",
              data.value().train.size());

  // (a) Convex, ε-DP, b = 1: accuracy should FALL as passes grow.
  PrintSweep("(a) Convex eps-DP, b=1: more passes -> more noise", data.value(),
             {1, 10, 20}, 1, 0.0, repeats, flags.seed);

  // (b) Strongly convex, ε-DP, b = 50: accuracy should not fall.
  std::printf("\n");
  PrintSweep("(b) Strongly convex eps-DP, b=50: passes are noise-free",
             data.value(), {1, 10, 20}, 50, 1e-3, repeats, flags.seed + 50);

  // (c) Convex, ε-DP, k = 20, batch sweep.
  std::printf("\n(c) Convex eps-DP, k=20: batch size rescues accuracy\n");
  std::printf("  %-8s %-8s %-8s %-8s\n", "epsilon", "b=1", "b=10", "b=50");
  for (double epsilon : EpsilonGridFor("mnist")) {
    std::printf("  %-8.3g", epsilon);
    for (size_t b : {1, 10, 50}) {
      TrainerConfig config;
      config.algorithm = Algorithm::kBoltOn;
      config.passes = 20;
      config.batch_size = b;
      config.privacy = PrivacyParams{epsilon, 0.0};
      auto acc = MeanAccuracy(data.value(), config, repeats,
                              flags.seed + 100 + b);
      acc.status().CheckOK();
      std::printf(" %-8.4f", acc.value());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
