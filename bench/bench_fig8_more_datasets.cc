// Figure 8 — accuracy vs ε on the two additional datasets (HIGGS and
// KDDCup-99), tuning with public data (fixed k = 10, b = 50, λ = 1e-4
// where applicable), all four test scenarios.
//
// Expected shape (paper): "for large datasets differential privacy comes
// for free with our algorithms" — ours sits on top of Noiseless across the
// whole ε grid on HIGGS, while SCS13/BST14 stay visibly below at small ε.
// KDDCup is near-separable, so every method's accuracy is high, with the
// same ordering.
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.datasets = "higgs,kddcup";
  flags.Parse(argc, argv, "bench_fig8_more_datasets").CheckOK();

  std::printf("== Figure 8: Additional datasets, tuning with public data "
              "==\n");
  for (const std::string& dataset : flags.DatasetList()) {
    auto data = LoadBenchData(dataset, flags.scale, flags.seed);
    data.status().CheckOK();
    const size_t m = data.value().train.size();
    std::printf("\n-- %s (m=%zu, d=%zu) --\n", dataset.c_str(), m,
                data.value().train.dim());
    for (const TestScenario& scenario : AllScenarios()) {
      std::printf("%s\n", scenario.label);
      PrintAccuracyHeader();
      for (double epsilon : EpsilonGridFor(dataset)) {
        std::vector<double> accuracies;
        for (Algorithm algorithm : AlgorithmsFor(scenario)) {
          TrainerConfig config =
              ScenarioConfig(scenario, algorithm, epsilon, m);
          auto acc = MeanAccuracy(data.value(), config,
                                  static_cast<int>(flags.repeats),
                                  flags.seed + scenario.id);
          acc.status().CheckOK();
          accuracies.push_back(acc.value());
        }
        PrintAccuracyRow(epsilon, accuracies, scenario.approx_dp);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
