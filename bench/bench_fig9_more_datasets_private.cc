// Figure 9 — the private-tuning (Algorithm 3) counterpart of Figure 8:
// accuracy vs ε on HIGGS and KDDCup-99 with the paper's tuning grid.
//
// Expected shape (paper): same ordering as Figure 8; ours remains at
// noiseless level on the large HIGGS dataset while SCS13 and BST14 are
// notably worse at small ε.
#include <cstdio>

#include "bench/private_tuning_harness.h"

int main(int argc, char** argv) {
  bolton::bench::CommonFlags flags;
  flags.datasets = "higgs,kddcup";
  flags.Parse(argc, argv, "bench_fig9_more_datasets_private").CheckOK();
  std::printf("== Figure 9: Additional datasets, private tuning "
              "(Algorithm 3) ==\n");
  bolton::bench::RunPrivateTunedFigure(flags, bolton::ModelKind::kLogistic,
                                       "fig9_more_datasets_private");
  return 0;
}
