// Figure 7 — the Huber SVM (Appendix B) variant of Figure 6: test accuracy
// vs ε with private tuning (Algorithm 3), Huber smoothing width h = 0.1.
// Constants L ≤ 1, β ≤ 1/(2h) feed the same sensitivity machinery.
//
// Expected shape (paper): identical ordering to the logistic figures; on
// MNIST ours is up to 6× better than BST14 and 2.5× better than SCS13.
#include <cstdio>

#include "bench/private_tuning_harness.h"

int main(int argc, char** argv) {
  bolton::bench::CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig7_hubersvm").CheckOK();
  std::printf("== Figure 7: Accuracy vs epsilon (private tuning, "
              "Algorithm 3, Huber SVM h=0.1) ==\n");
  bolton::bench::RunPrivateTunedFigure(flags, bolton::ModelKind::kHuberSvm,
                                       "fig7_hubersvm");
  return 0;
}
