// Ablation — paper vs corrected mini-batch sensitivity for Algorithm 2.
//
// DESIGN.md §6 documents a reproduction finding: the paper's claim that
// mini-batching divides Lemma 8's Δ₂ by b is unsound (the decreasing
// schedule sees b× fewer updates, cancelling the 1/b). This bench
// quantifies what the sound calibration costs: accuracy of the bolt-on
// strongly convex algorithm under the paper's Δ₂ = 2L/(γmb) vs the
// corrected Δ₂ = 2L/(γm), across ε, plus the empirical worst-case δ_T the
// two bounds are protecting against.
//
// Expected shape: the corrected curve needs roughly b× larger ε to reach
// the same accuracy; the empirical δ_T sits between the two bounds,
// violating the paper's and respecting the corrected one.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/private_sgd.h"
#include "core/sensitivity.h"
#include "optim/schedule.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_ablation_sensitivity").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  auto data = LoadBenchData("protein", flags.scale, flags.seed);
  data.status().CheckOK();
  const Dataset& train = data.value().train;
  const Dataset& test = data.value().test;
  const size_t m = train.size();
  const size_t k = 10, b = 50;
  const double lambda = 0.01;

  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  SensitivitySetup setup{k, b, m};
  double paper_bound =
      StronglyConvexDecreasingStepSensitivity(*loss, setup).value();
  double corrected_bound =
      StronglyConvexDecreasingStepSensitivityCorrected(*loss, setup).value();

  // Empirical worst case over a few label flips (the adversarial direction
  // the growth recursion is protecting against).
  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();
  PsgdOptions psgd;
  psgd.passes = k;
  psgd.batch_size = b;
  psgd.radius = loss->radius();
  double worst_delta = 0.0;
  for (size_t index : {size_t{0}, m / 2, m - 1}) {
    Example flipped = train[index];
    flipped.label = -flipped.label;
    double delta =
        SimulateDeltaT(train, index, flipped, *loss, *schedule, psgd,
                       flags.seed)
            .value();
    worst_delta = std::max(worst_delta, delta);
  }

  std::printf("== Ablation: mini-batch sensitivity calibration "
              "(protein-like, m=%zu, k=%zu, b=%zu, lambda=%g) ==\n\n",
              m, k, b, lambda);
  std::printf("  paper Delta2 = 2L/(gamma*m*b)      : %.6f\n", paper_bound);
  std::printf("  corrected Delta2 = 2L/(gamma*m)    : %.6f (b x larger)\n",
              corrected_bound);
  std::printf("  empirical worst-case delta_T       : %.6f  %s\n\n",
              worst_delta,
              worst_delta > paper_bound
                  ? "(VIOLATES the paper bound; within the corrected one)"
                  : "(within both bounds on this data)");

  std::printf("  %-8s %-14s %-14s %-12s\n", "epsilon", "ours(paper)",
              "ours(corrected)", "noiseless");
  for (double epsilon : EpsilonGridFor("protein")) {
    double accs[2];
    for (int variant = 0; variant < 2; ++variant) {
      double total = 0.0;
      for (int r = 0; r < repeats; ++r) {
        BoltOnOptions options;
        options.privacy = PrivacyParams{epsilon, 0.0};
        options.passes = k;
        options.batch_size = b;
        options.use_corrected_minibatch_sensitivity = (variant == 1);
        Rng rng(flags.seed + 100 * r + variant);
        auto out = PrivateStronglyConvexPsgd(train, *loss, options, &rng);
        out.status().CheckOK();
        total += BinaryAccuracy(out.value().model, test);
      }
      accs[variant] = total / repeats;
    }
    // The noiseless reference comes along for free from any run above.
    BoltOnOptions reference_options;
    reference_options.privacy = PrivacyParams{epsilon, 0.0};
    reference_options.passes = k;
    reference_options.batch_size = b;
    Rng reference_rng(flags.seed);
    auto reference =
        PrivateStronglyConvexPsgd(train, *loss, reference_options,
                                  &reference_rng);
    reference.status().CheckOK();
    std::printf("  %-8.3g %-14.4f %-14.4f %-12.4f\n", epsilon, accs[0],
                accs[1],
                BinaryAccuracy(reference.value().noiseless_model, test));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
