// Figure 10 — mini-batch size vs accuracy on the MNIST-like workload for
// b ∈ {50, 100, 150, 200}, strongly convex (ε,δ)-DP setting, all four
// algorithms.
//
// Expected shape (paper): ours reaches near-noiseless accuracy at every
// batch size; SCS13 and BST14 improve with b but stay significantly below.
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig10_batchsize").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  auto data = LoadBenchData("mnist", flags.scale, flags.seed);
  data.status().CheckOK();
  const size_t m = data.value().train.size();
  std::printf("== Figure 10: Mini-batch size vs accuracy (mnist-like, "
              "m=%zu, strongly convex (eps,delta)-DP) ==\n",
              m);

  const TestScenario scenario{4, true, true,
                              "Test4: Strongly Convex, (eps,delta)-DP"};
  for (size_t b : {50, 100, 150, 200}) {
    std::printf("\n(b = %zu)\n", b);
    PrintAccuracyHeader();
    for (double epsilon : EpsilonGridFor("mnist")) {
      std::vector<double> accuracies;
      for (Algorithm algorithm : AlgorithmsFor(scenario)) {
        TrainerConfig config = ScenarioConfig(scenario, algorithm, epsilon, m);
        config.batch_size = b;
        auto acc = MeanAccuracy(data.value(), config, repeats,
                                flags.seed + b);
        acc.status().CheckOK();
        accuracies.push_back(acc.value());
      }
      PrintAccuracyRow(epsilon, accuracies, /*has_bst14=*/true);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
