// Figure 6 — test accuracy vs ε when hyperparameters are tuned with the
// PRIVATE tuning procedure (Algorithm 3): the data is split into l+1
// portions, one candidate model is trained per portion, and the exponential
// mechanism selects among them using held-out error counts. Grid: k ∈
// {5, 10} and λ ∈ {1e-4, 1e-3, 1e-2} (λ only in the strongly convex tests),
// exactly the paper's caption.
//
// Expected shape (paper): same ordering as Figure 3 — ours above SCS13 and
// BST14 at every ε (up to 3–3.5×), all curves lower than Figure 3's because
// each candidate only sees 1/(l+1) of the data.
#include <cstdio>

#include "bench/private_tuning_harness.h"

int main(int argc, char** argv) {
  bolton::bench::CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig6_accuracy_private").CheckOK();
  std::printf("== Figure 6: Accuracy vs epsilon (private tuning, "
              "Algorithm 3, logistic regression) ==\n");
  bolton::bench::RunPrivateTunedFigure(flags, bolton::ModelKind::kLogistic,
                                       "fig6_accuracy_private");
  return 0;
}
