// Ablation — random projection dimension (§2 "Random Projection"). The
// Laplace mechanism's noise magnitude grows linearly in d (Theorem 2), so
// projecting MNIST 784 → d trades representation quality against privacy
// noise. The paper picks d = 50.
//
// Expected shape: noiseless accuracy rises with d and saturates; private
// accuracy at fixed ε peaks at an intermediate d (too small loses signal,
// too large drowns in noise) — the peak sits near the paper's choice of 50.
#include <cstdio>

#include "bench/bench_common.h"
#include "data/projection.h"
#include "data/synthetic.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_ablation_projection").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  MnistLikeSpec spec;
  spec.scale = 0.25 * flags.scale;
  spec.seed = flags.seed;
  auto split = GenerateMnistLike(spec);
  split.status().CheckOK();

  std::printf("== Ablation: projection dimension (mnist-like 784 -> d, "
              "one-vs-all, strongly convex eps-DP, lambda=1e-3) ==\n\n");
  std::printf("  %-8s %-12s %-12s %-12s %-12s\n", "d", "noiseless",
              "ours(e=0.2)", "ours(e=1)", "ours(e=4)");

  for (size_t d : {10, 25, 50, 100, 200}) {
    auto projection =
        GaussianRandomProjection::Create(784, d, flags.seed + d).MoveValue();
    BenchData data;
    data.name = "mnist";
    data.multiclass = true;
    data.train = projection.Apply(split.value().first).MoveValue();
    data.test = projection.Apply(split.value().second).MoveValue();

    TrainerConfig noiseless;
    noiseless.algorithm = Algorithm::kNoiseless;
    noiseless.passes = 10;
    noiseless.batch_size = 50;
    auto clean = MeanAccuracy(data, noiseless, 1, flags.seed);
    clean.status().CheckOK();
    std::printf("  %-8zu %-12.4f", d, clean.value());

    for (double epsilon : {0.2, 1.0, 4.0}) {
      TrainerConfig ours = noiseless;
      ours.algorithm = Algorithm::kBoltOn;
      ours.lambda = 1e-3;
      ours.privacy = PrivacyParams{epsilon, 0.0};
      auto priv = MeanAccuracy(data, ours, repeats, flags.seed + 1);
      priv.status().CheckOK();
      std::printf(" %-12.4f", priv.value());
    }
    std::printf("\n");
  }
  std::printf("\nTheorem 2: Laplace noise norm scales linearly with d — the "
              "private column should peak at an intermediate dimension.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
