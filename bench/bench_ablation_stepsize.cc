// Ablation — step-size schedule (Corollary 1 vs 2 vs 3). The paper derives
// L2-sensitivities for three convex step-size families; this bench shows
// the trade-off each implies between sensitivity (privacy noise) and
// convergence, at fixed k and b on the Protein-like workload.
//
// Expected shape: the decreasing schedule (Cor. 2) has the smallest Δ₂ but
// the slowest convergence; the constant 1/√m schedule (Cor. 1, the paper's
// default) balances both and wins on private accuracy at moderate ε.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "core/private_sgd.h"
#include "core/sensitivity.h"
#include "optim/psgd.h"
#include "optim/schedule.h"

namespace bolton {
namespace bench {
namespace {

struct ScheduleCase {
  const char* name;
  std::unique_ptr<StepSizeSchedule> schedule;
  double sensitivity;
};

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_ablation_stepsize").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  auto data = LoadBenchData("protein", flags.scale, flags.seed);
  data.status().CheckOK();
  const Dataset& train = data.value().train;
  const Dataset& test = data.value().test;
  const size_t m = train.size();
  const size_t k = 10, b = 50;
  const double c = 0.5;

  auto loss =
      MakeLogisticLoss(0.0, std::numeric_limits<double>::infinity())
          .MoveValue();
  SensitivitySetup setup{k, b, m};
  const double eta = 1.0 / std::sqrt(static_cast<double>(m));

  std::vector<ScheduleCase> cases;
  cases.push_back(
      {"constant 1/sqrt(m) (Cor.1)", MakeConstantStep(eta).MoveValue(),
       ConvexConstantStepSensitivity(*loss, eta, setup).value()});
  cases.push_back(
      {"decreasing 2/(B(t+m^c)) (Cor.2)",
       MakeDecreasingStep(loss->smoothness(), m, c).MoveValue(),
       ConvexDecreasingStepSensitivity(*loss, c, setup).value()});
  cases.push_back(
      {"sqrt 2/(B(sqrt(t)+m^c)) (Cor.3)",
       MakeSqrtOffsetStep(loss->smoothness(), m, c).MoveValue(),
       ConvexSqrtStepSensitivity(*loss, c, setup).value()});

  std::printf("== Ablation: step-size schedule (protein-like, m=%zu, k=%zu, "
              "b=%zu, convex eps-DP) ==\n\n",
              m, k, b);
  std::printf("  %-34s %-12s %-12s", "schedule", "delta2", "noiseless");
  for (double epsilon : EpsilonGridFor("protein")) {
    std::printf(" eps=%-6.3g", epsilon);
  }
  std::printf("\n");

  for (const ScheduleCase& sc : cases) {
    PsgdOptions psgd;
    psgd.passes = k;
    psgd.batch_size = b;
    Rng clean_rng(flags.seed);
    auto clean = RunPsgd(train, *loss, *sc.schedule, psgd, &clean_rng);
    clean.status().CheckOK();
    std::printf("  %-34s %-12.3g %-12.4f", sc.name, sc.sensitivity,
                BinaryAccuracy(clean.value().model, test));

    for (double epsilon : EpsilonGridFor("protein")) {
      double total = 0.0;
      for (int r = 0; r < repeats; ++r) {
        Rng rng(flags.seed + 100 * r);
        auto run = RunPsgd(train, *loss, *sc.schedule, psgd, &rng);
        run.status().CheckOK();
        Rng noise_rng(flags.seed + 100 * r + 7);
        auto priv = BoltOnPerturb(run.value().model, sc.sensitivity,
                                  PrivacyParams{epsilon, 0.0}, &noise_rng);
        priv.status().CheckOK();
        total += BinaryAccuracy(priv.value().model, test);
      }
      std::printf(" %-10.4f", total / repeats);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
