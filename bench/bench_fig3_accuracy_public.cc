// Figure 3 — test accuracy vs ε with hyperparameters fixed from public
// knowledge (the paper's caption: k = 10 passes, b = 50, λ = 1e-4 where
// applicable). Three datasets × four test scenarios; each row compares
// Noiseless / Ours / SCS13 (and BST14 for the (ε,δ) tests).
//
// Expected shape (paper): Ours dominates SCS13 and BST14 at every ε and
// approaches Noiseless as ε grows; SCS13 degrades sharply at small ε.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig3_accuracy_public").CheckOK();

  std::printf("== Figure 3: Accuracy vs epsilon (tuning with public data) "
              "==\n");
  for (const std::string& dataset : flags.DatasetList()) {
    auto data = LoadBenchData(dataset, flags.scale, flags.seed);
    data.status().CheckOK();
    const size_t m = data.value().train.size();
    std::printf("\n-- %s (m=%zu, d=%zu) --\n", dataset.c_str(), m,
                data.value().train.dim());

    for (const TestScenario& scenario : AllScenarios()) {
      std::printf("%s\n", scenario.label);
      PrintAccuracyHeader();
      double max_ratio = 0.0;
      for (double epsilon : EpsilonGridFor(dataset)) {
        std::vector<double> accuracies;
        for (Algorithm algorithm : AlgorithmsFor(scenario)) {
          TrainerConfig config =
              ScenarioConfig(scenario, algorithm, epsilon, m);
          const uint64_t start_ns = obs::MonotonicNanos();
          auto acc = MeanAccuracy(data.value(), config,
                                  static_cast<int>(flags.repeats),
                                  flags.seed + scenario.id);
          acc.status().CheckOK();
          accuracies.push_back(acc.value());

          BenchResultRow row;
          row.figure = "fig3_accuracy_public";
          row.name = StrFormat("%s/test%d/%s/eps=%g", dataset.c_str(),
                               scenario.id, AlgorithmName(algorithm),
                               epsilon);
          row.dataset = dataset;
          row.algo = AlgorithmName(algorithm);
          row.epsilon = epsilon;
          row.wall_seconds =
              static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9;
          row.rows_per_sec =
              row.wall_seconds > 0
                  ? static_cast<double>(m) * 10 * flags.repeats /
                        row.wall_seconds
                  : 0;
          row.accuracy = acc.value();
          AddBenchResult(std::move(row));
        }
        PrintAccuracyRow(epsilon, accuracies, scenario.approx_dp);
        for (size_t baseline = 2; baseline < accuracies.size(); ++baseline) {
          if (accuracies[baseline] > 0.0) {
            max_ratio = std::max(max_ratio,
                                 accuracies[1] / accuracies[baseline]);
          }
        }
      }
      std::printf("  max accuracy ratio ours/baseline: %.2fx "
                  "(paper reports up to 4x)\n",
                  max_ratio);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
