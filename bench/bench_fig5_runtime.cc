// Figure 5 — runtime of the four algorithms inside the engine (google-
// benchmark). Row 1 of the paper's figure: runtime vs number of epochs at
// b = 10. Row 2: runtime of a single epoch vs mini-batch size. Strongly
// convex (ε,δ)-DP, ε = 0.1, λ = 1e-4, on the MNIST-like (projected),
// Protein-like and Covertype-like workloads.
//
// Expected shape (paper): Ours tracks Noiseless at every setting; SCS13 and
// BST14 are 2–3× slower at b = 10 (up to 6× at b = 1) and converge to
// Noiseless as b reaches 500, because per-mini-batch noise sampling
// amortizes away.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "engine/driver.h"
#include "random/distributions.h"
#include "random/dp_noise.h"

namespace bolton {
namespace bench {
namespace {

enum AlgoId : int { kNoiselessId = 0, kOursId, kScs13Id, kBst14Id };

class Scs13StyleNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
    return SampleSphericalLaplace(dim, 0.04, 0.01, rng);
  }
};

class Bst14StyleNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
    return SampleGaussianVector(dim, 0.5, rng);
  }
};

// One cached table per dataset (building them inside the benchmark loop
// would swamp the timings).
const BenchData& CachedData(const std::string& name) {
  static std::map<std::string, BenchData>* cache =
      new std::map<std::string, BenchData>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto data = LoadBenchData(name, 1.0, 7);
    data.status().CheckOK();
    it = cache->emplace(name, std::move(data).value()).first;
  }
  return it->second;
}

void RunEngine(benchmark::State& state, const std::string& dataset,
               int algo, size_t epochs, size_t batch) {
  const BenchData& data = CachedData(dataset);
  auto table = MakeTable(data.train, StorageMode::kMemory).MoveValue();
  auto loss = MakeLogisticLoss(1e-4, 1e4).MoveValue();
  auto schedule =
      MakeInverseTimeStep(loss->strong_convexity(), loss->smoothness())
          .MoveValue();

  Scs13StyleNoise scs13;
  Bst14StyleNoise bst14;
  GradientNoiseSource* noise = nullptr;
  if (algo == kScs13Id) noise = &scs13;
  if (algo == kBst14Id) noise = &bst14;

  DriverOptions options;
  options.max_epochs = epochs;
  options.batch_size = batch;
  options.radius = loss->radius();

  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto out = RunSgdDriver(table.get(), *loss, *schedule, options, &rng,
                            noise);
    out.status().CheckOK();
    if (algo == kOursId) {
      Rng noise_rng(seed);
      benchmark::DoNotOptimize(
          SampleSphericalLaplace(table->dim(), 1e-4, 0.1, &noise_rng));
    }
    benchmark::DoNotOptimize(out.value().model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(epochs) *
                          static_cast<int64_t>(data.train.size()));
}

// Row 1: runtime vs epochs at b = 10.
void BM_Epochs(benchmark::State& state, const std::string& dataset,
               int algo) {
  RunEngine(state, dataset, algo, static_cast<size_t>(state.range(0)), 10);
}

// Row 2: one epoch, runtime vs batch size.
void BM_BatchSize(benchmark::State& state, const std::string& dataset,
                  int algo) {
  RunEngine(state, dataset, algo, 1, static_cast<size_t>(state.range(0)));
}

void RegisterAll() {
  const std::pair<const char*, int> kAlgos[] = {
      {"noiseless", kNoiselessId},
      {"ours", kOursId},
      {"scs13", kScs13Id},
      {"bst14", kBst14Id},
  };
  for (const char* dataset : {"mnist", "protein", "covertype"}) {
    for (const auto& [algo_name, algo_id] : kAlgos) {
      std::string base = std::string(dataset) + "/" + algo_name;
      benchmark::RegisterBenchmark(
          ("Fig5_EpochSweep/" + base).c_str(),
          [dataset = std::string(dataset), id = algo_id](
              benchmark::State& st) { BM_Epochs(st, dataset, id); })
          ->Arg(1)
          ->Arg(5)
          ->Arg(10)
          ->Arg(20)
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("Fig5_BatchSweep/" + base).c_str(),
          [dataset = std::string(dataset), id = algo_id](
              benchmark::State& st) { BM_BatchSize(st, dataset, id); })
          ->Arg(1)
          ->Arg(10)
          ->Arg(100)
          ->Arg(500)
          ->MinTime(0.1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) {
  // BOLTON_TELEMETRY=1 enables the obs pillars for a profiling run; left
  // off, instrumentation inside the timed loops is a branch per call site.
  const bool telemetry = bolton::bench::EnableTelemetryFromEnv();
  // BOLTON_PROFILE=HZ samples the whole run; the collapsed profile lands in
  // BOLTON_PROFILE_OUT (default bench_profile.collapsed).
  bolton::bench::EnableProfilerFromEnv();
  bolton::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bolton::bench::FinishProfilerFromEnv();
  if (telemetry) {
    bolton::bench::DumpTelemetry(true, "bench_fig5.trace.jsonl",
                                 "bench_fig5.ledger.jsonl");
  }
  return 0;
}
