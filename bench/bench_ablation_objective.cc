// Ablation — output perturbation (ours) vs objective perturbation (CMS11,
// the paper's [13]), the classic ε-DP alternative §5 surveys.
//
// Expected shape: at larger ε both reach noiseless-level accuracy;
// objective perturbation's noise enters before optimization (the model
// adapts around it), so it can edge ahead at tiny ε — BUT its guarantee
// assumes the exact minimizer is released, which no SGD system produces
// (the paper's core criticism); the bolt-on guarantee holds for whatever
// the black box returns. This bench quantifies the accuracy side of that
// trade on the Protein-like workload.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/objective_perturbation.h"
#include "core/private_sgd.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_ablation_objective").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  auto data = LoadBenchData("protein", flags.scale, flags.seed);
  data.status().CheckOK();
  const Dataset& train = data.value().train;
  const Dataset& test = data.value().test;
  const double lambda = 0.01;

  std::printf("== Ablation: output vs objective perturbation "
              "(protein-like, m=%zu, lambda=%g, eps-DP) ==\n\n",
              train.size(), lambda);
  std::printf("  %-8s %-16s %-16s %-12s\n", "epsilon", "output-pert(ours)",
              "objective-pert", "noiseless");

  auto loss = MakeLogisticLoss(lambda, 1.0 / lambda).MoveValue();
  for (double epsilon : EpsilonGridFor("protein")) {
    double ours_total = 0.0, objective_total = 0.0;
    double noiseless = 0.0;
    for (int r = 0; r < repeats; ++r) {
      BoltOnOptions ours;
      ours.privacy = PrivacyParams{epsilon, 0.0};
      ours.passes = 10;
      ours.batch_size = 50;
      Rng rng_ours(flags.seed + 100 * r);
      auto ours_out = PrivateStronglyConvexPsgd(train, *loss, ours,
                                                &rng_ours);
      ours_out.status().CheckOK();
      ours_total += BinaryAccuracy(ours_out.value().model, test);
      noiseless = BinaryAccuracy(ours_out.value().noiseless_model, test);

      ObjectivePerturbationOptions objective;
      objective.epsilon = epsilon;
      objective.lambda = lambda;
      objective.passes = 10;
      objective.batch_size = 50;
      Rng rng_objective(flags.seed + 100 * r + 7);
      auto objective_out =
          RunObjectivePerturbation(train, objective, &rng_objective);
      objective_out.status().CheckOK();
      objective_total += BinaryAccuracy(objective_out.value().model, test);
    }
    std::printf("  %-8.3g %-16.4f %-16.4f %-12.4f\n", epsilon,
                ours_total / repeats, objective_total / repeats, noiseless);
  }
  std::printf("\nCaveat (paper §5): objective perturbation's guarantee "
              "assumes the EXACT minimizer; this run approximates it with "
              "10 PSGD passes, so its epsilon is heuristic. Ours holds for "
              "whatever the black box returns.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
