#ifndef BOLTON_BENCH_PRIVATE_TUNING_HARNESS_H_
#define BOLTON_BENCH_PRIVATE_TUNING_HARNESS_H_

// Shared driver for the privately-tuned accuracy figures (Figures 6, 7,
// and 9): splits the data, trains one candidate per portion, selects with
// the exponential mechanism (Algorithm 3), and averages test accuracy over
// seeds. Parameterized on the model family so the logistic (Fig. 6) and
// Huber SVM (Fig. 7) variants share one implementation.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/private_tuning.h"

namespace bolton {
namespace bench {

inline std::vector<TuningCandidate> TuningGridFor(
    const TestScenario& scenario) {
  if (scenario.strongly_convex) {
    // The paper's grid: k ∈ {5, 10}, λ ∈ {1e-4, 1e-3, 1e-2}, b fixed at 50.
    return MakeTuningGrid({5, 10}, {50}, {1e-4, 1e-3, 1e-2});
  }
  // λ is not applicable in the convex tests; tune k only.
  return MakeTuningGrid({5, 10}, {50}, {0.0});
}

/// Algorithm-3-tuned test accuracy for a binary dataset.
inline Result<double> PrivateTunedBinaryAccuracy(
    const BenchData& data, const TestScenario& scenario, Algorithm algorithm,
    ModelKind model_kind, double epsilon, int repeats, uint64_t seed_base) {
  const size_t m = data.train.size();
  const std::vector<TuningCandidate> grid = TuningGridFor(scenario);
  TuningTrainFn train = [&](const Dataset& portion,
                            const TuningCandidate& candidate,
                            Rng* rng) -> Result<Vector> {
    TrainerConfig config = ScenarioConfig(scenario, algorithm, epsilon, m);
    config.model = model_kind;
    config.lambda = candidate.lambda;
    config.passes = candidate.passes;
    config.batch_size = std::min(candidate.batch_size, portion.size());
    return TrainBinary(portion, config, rng);
  };
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(seed_base + 1000 * r);
    PrivacyParams budget{epsilon, scenario.approx_dp ? DeltaFor(m) : 0.0};
    BOLTON_ASSIGN_OR_RETURN(
        TuningOutput out,
        PrivatelyTunedSgd(data.train, grid, budget, train, &rng));
    total += BinaryAccuracy(out.model, data.test);
  }
  return total / repeats;
}

/// Algorithm-3-tuned test accuracy for the one-vs-all multiclass case
/// (MNIST), composed around the exposed exponential-mechanism selector.
inline Result<double> PrivateTunedMulticlassAccuracy(
    const BenchData& data, const TestScenario& scenario, Algorithm algorithm,
    ModelKind model_kind, double epsilon, int repeats, uint64_t seed_base) {
  const size_t m = data.train.size();
  const std::vector<TuningCandidate> grid = TuningGridFor(scenario);
  double total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Rng rng(seed_base + 1000 * r);
    std::vector<Dataset> portions = data.train.SplitEven(grid.size() + 1);
    const Dataset& holdout = portions.back();
    std::vector<MulticlassModel> models;
    std::vector<size_t> errors;
    for (size_t i = 0; i < grid.size(); ++i) {
      TrainerConfig config = ScenarioConfig(scenario, algorithm, epsilon, m);
      config.model = model_kind;
      config.lambda = grid[i].lambda;
      config.passes = grid[i].passes;
      config.batch_size = std::min(grid[i].batch_size, portions[i].size());
      Rng sub_rng = rng.Split();
      BOLTON_ASSIGN_OR_RETURN(MulticlassModel model,
                              TrainMulticlass(portions[i], config, &sub_rng));
      size_t wrong = 0;
      for (size_t j = 0; j < holdout.size(); ++j) {
        if (model.Predict(holdout[j].x) != holdout[j].label) ++wrong;
      }
      errors.push_back(wrong);
      models.push_back(std::move(model));
    }
    size_t chosen = SampleExponentialMechanism(errors, epsilon, &rng);
    total += MulticlassAccuracy(models[chosen], data.test);
  }
  return total / repeats;
}

/// Prints one full figure (every dataset × scenario × ε) for the given
/// model family; `figure` labels the machine-readable result rows.
inline void RunPrivateTunedFigure(const CommonFlags& flags,
                                  ModelKind model_kind,
                                  const char* figure) {
  const int repeats = static_cast<int>(flags.repeats);
  for (const std::string& dataset : flags.DatasetList()) {
    auto data = LoadBenchData(dataset, flags.scale, flags.seed);
    data.status().CheckOK();
    std::printf("\n-- %s (m=%zu, d=%zu) --\n", dataset.c_str(),
                data.value().train.size(), data.value().train.dim());

    for (const TestScenario& scenario : AllScenarios()) {
      std::printf("%s\n", scenario.label);
      PrintAccuracyHeader();
      for (double epsilon : EpsilonGridFor(dataset)) {
        std::vector<double> accuracies;
        for (Algorithm algorithm : AlgorithmsFor(scenario)) {
          const uint64_t start_ns = obs::MonotonicNanos();
          Result<double> acc =
              data.value().multiclass
                  ? PrivateTunedMulticlassAccuracy(
                        data.value(), scenario, algorithm, model_kind,
                        epsilon, repeats, flags.seed + 10 * scenario.id)
                  : PrivateTunedBinaryAccuracy(
                        data.value(), scenario, algorithm, model_kind,
                        epsilon, repeats, flags.seed + 10 * scenario.id);
          acc.status().CheckOK();
          accuracies.push_back(acc.value());

          BenchResultRow row;
          row.figure = figure;
          row.name = StrFormat("%s/test%d/%s/eps=%g", dataset.c_str(),
                               scenario.id, AlgorithmName(algorithm),
                               epsilon);
          row.dataset = dataset;
          row.algo = AlgorithmName(algorithm);
          row.epsilon = epsilon;
          row.wall_seconds =
              static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9;
          row.accuracy = acc.value();
          AddBenchResult(std::move(row));
        }
        PrintAccuracyRow(epsilon, accuracies, scenario.approx_dp);
      }
    }
  }
}

}  // namespace bench
}  // namespace bolton

#endif  // BOLTON_BENCH_PRIVATE_TUNING_HARNESS_H_
