// Table 2 — convergence comparison for (ε,δ)-DP at a constant number of
// passes: ours vs BST14, convex and strongly convex.
//
// The paper's table is analytic:
//             Ours                  BST14
//   Convex    O(√d/√m)              O(√d log^{3/2} m / √m)
//   Strongly  O(√d log m / m)       O(d log² m / m)
//
// This bench measures the empirical counterpart: excess empirical risk
// L_S(w̃) − L_S(w*) as m grows (w* approximated by a long noiseless run),
// averaged over seeds. Expected shape: both shrink with m; ours is smaller
// at every m, and the ours/BST14 gap does not close as m grows (BST14
// carries extra log factors).
#include <algorithm>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "core/bst14.h"
#include "core/private_sgd.h"
#include "data/synthetic.h"
#include "optim/psgd.h"
#include "optim/schedule.h"

namespace bolton {
namespace bench {
namespace {

// Approximates w* = argmin L_S with many noiseless passes.
Vector ReferenceMinimizer(const Dataset& data, const LossFunction& loss,
                          uint64_t seed) {
  TrainerConfig config;
  config.algorithm = Algorithm::kNoiseless;
  config.lambda = loss.IsStronglyConvex() ? loss.strong_convexity() : 0.0;
  config.passes = 40;
  config.batch_size = 10;
  Rng rng(seed);
  return TrainBinary(data, config, &rng).MoveValue();
}

struct ExcessRisks {
  double ours;
  double bst14;
};

ExcessRisks MeasureExcess(const Dataset& data, const LossFunction& loss,
                          bool strongly_convex, int repeats, uint64_t seed) {
  const size_t m = data.size();
  const PrivacyParams privacy{0.5, DeltaFor(m)};
  Vector reference = ReferenceMinimizer(data, loss, seed);
  const double risk_star = loss.EmpiricalRisk(reference, data);

  double ours_total = 0.0, bst14_total = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Rng rng_ours(seed + 10 * r);
    BoltOnOptions ours;
    ours.privacy = privacy;
    ours.passes = 10;
    ours.batch_size = 50;
    auto ours_out = PrivatePsgd(data, loss, ours, &rng_ours);
    ours_out.status().CheckOK();
    ours_total += loss.EmpiricalRisk(ours_out.value().model, data) - risk_star;

    Rng rng_bst(seed + 10 * r + 5);
    Bst14Options bst;
    bst.privacy = privacy;
    bst.passes = 10;
    bst.batch_size = 50;
    if (!strongly_convex) bst.radius = 10.0;
    auto bst_out = RunBst14(data, loss, bst, &rng_bst);
    bst_out.status().CheckOK();
    bst14_total += loss.EmpiricalRisk(bst_out.value().model, data) - risk_star;
  }
  return {ours_total / repeats, bst14_total / repeats};
}

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_table2_convergence").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  std::printf("== Table 2: Excess empirical risk vs m, (eps,delta)-DP, "
              "constant passes (eps=0.5, k=10, b=50, d=20) ==\n");
  std::printf("Paper rates — convex: ours O(sqrt(d)/sqrt(m)) vs BST14 "
              "O(sqrt(d) log^1.5 m / sqrt(m));\n");
  std::printf("strongly convex: ours O(sqrt(d) log m / m) vs BST14 "
              "O(d log^2 m / m)\n");

  const std::vector<size_t> sizes = {1000, 4000, 16000};

  std::printf("\nConvex (plain logistic):\n");
  std::printf("  %-8s %-14s %-14s %-8s\n", "m", "ours", "bst14",
              "ratio");
  for (size_t m : sizes) {
    SyntheticConfig config;
    config.num_examples = m;
    config.dim = 20;
    config.margin = 2.0;
    config.noise_stddev = 0.6;
    config.seed = flags.seed + m;
    Dataset data = GenerateSynthetic(config).MoveValue();
    auto loss =
        MakeLogisticLoss(0.0, std::numeric_limits<double>::infinity())
            .MoveValue();
    ExcessRisks excess =
        MeasureExcess(data, *loss, false, repeats, flags.seed);
    std::printf("  %-8zu %-14.5f %-14.5f %-8.2f\n", m, excess.ours,
                excess.bst14, excess.bst14 / std::max(1e-9, excess.ours));
  }

  std::printf("\nStrongly convex (L2 logistic, lambda=1e-2, R=100):\n");
  std::printf("  %-8s %-14s %-14s %-8s\n", "m", "ours", "bst14",
              "ratio");
  for (size_t m : sizes) {
    SyntheticConfig config;
    config.num_examples = m;
    config.dim = 20;
    config.margin = 2.0;
    config.noise_stddev = 0.6;
    config.seed = flags.seed + 2 * m;
    Dataset data = GenerateSynthetic(config).MoveValue();
    auto loss = MakeLogisticLoss(1e-2, 100.0).MoveValue();
    ExcessRisks excess = MeasureExcess(data, *loss, true, repeats, flags.seed);
    std::printf("  %-8zu %-14.5f %-14.5f %-8.2f\n", m, excess.ours,
                excess.bst14, excess.bst14 / std::max(1e-9, excess.ours));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
