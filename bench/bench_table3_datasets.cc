// Table 3 — dataset inventory. Prints each benchmark dataset's shape
// (train/test sizes, dimensionality, classes) alongside the paper's
// reference sizes, plus the effective scaled size used by the accuracy
// benches. MNIST is shown before and after the 784 → 50 random projection.
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

struct PaperRow {
  const char* name;
  const char* task;
  size_t train;
  size_t test;
  const char* dims;
};

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_table3_datasets").CheckOK();

  std::printf("== Table 3: Datasets ==\n\n");
  std::printf("Paper reference (scale = 1):\n");
  std::printf("  %-10s %-10s %-10s %-10s %-12s\n", "dataset", "task",
               "train", "test", "#dims");
  const PaperRow kPaper[] = {
      {"mnist", "10 classes", 60000, 10000, "784 (50)"},
      {"protein", "binary", 36438, 36438, "74"},
      {"covertype", "binary", 498010, 83002, "54"},
      {"higgs", "binary", 10500000, 500000, "28"},
      {"kddcup", "binary", 494021, 311029, "41"},
  };
  for (const PaperRow& row : kPaper) {
    std::printf("  %-10s %-10s %-10zu %-10zu %-12s\n", row.name, row.task,
                row.train, row.test, row.dims);
  }

  std::printf("\nGenerated stand-ins at bench scale (--scale=%g):\n",
              flags.scale);
  for (const char* name :
       {"mnist", "protein", "covertype", "higgs", "kddcup"}) {
    auto data = LoadBenchData(name, flags.scale, flags.seed);
    data.status().CheckOK();
    std::printf("  train: %s\n",
                data.value().train.Summary(name).c_str());
    std::printf("  test:  %s\n", data.value().test.Summary(name).c_str());
  }
  std::printf("\nAll feature vectors normalized to the unit L2 ball, as the "
              "paper's analysis assumes.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
