// Ablation — model averaging (Lemma 10). Averaging all iterates never
// increases the L2-sensitivity, so it is "free" privacy-wise; this bench
// measures what it buys (or costs) in accuracy for the convex bolt-on
// algorithm at the paper's default settings.
//
// Expected shape: at small ε the two variants are statistically close (the
// perturbation dominates); at large ε the last iterate edges ahead on this
// well-separated workload, matching SGD folklore that averaging mostly
// helps noisy/ill-conditioned problems.
#include <cstdio>

#include "bench/bench_common.h"

namespace bolton {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_ablation_averaging").CheckOK();
  const int repeats = static_cast<int>(flags.repeats);

  std::printf("== Ablation: model averaging (Lemma 10; convex eps-DP, "
              "k=10, b=50) ==\n");
  for (const std::string& dataset : {std::string("protein"),
                                     std::string("covertype")}) {
    auto data = LoadBenchData(dataset, flags.scale, flags.seed);
    data.status().CheckOK();
    std::printf("\n-- %s (m=%zu) --\n", dataset.c_str(),
                data.value().train.size());
    std::printf("  %-8s %-14s %-14s\n", "epsilon", "last-iterate",
                "averaged");
    for (double epsilon : EpsilonGridFor(dataset)) {
      double accs[2];
      for (int variant = 0; variant < 2; ++variant) {
        TrainerConfig config;
        config.algorithm = Algorithm::kBoltOn;
        config.passes = 10;
        config.batch_size = 50;
        config.privacy = PrivacyParams{epsilon, 0.0};
        config.output = variant == 1 ? OutputMode::kAverageAll
                                     : OutputMode::kLastIterate;
        auto acc = MeanAccuracy(data.value(), config, repeats,
                                flags.seed + variant);
        acc.status().CheckOK();
        accs[variant] = acc.value();
      }
      std::printf("  %-8.3g %-14.4f %-14.4f\n", epsilon, accs[0], accs[1]);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
