// Ablation — sparse vs dense PSGD throughput (google-benchmark).
//
// The sparse engine (optim/sparse_psgd.h) produces bit-identical models to
// the dense one, so this is purely a systems ablation: on ~1%-density data
// the O(nnz) gradient kernel should beat the O(d) dense kernel by roughly
// the inverse density, while on fully dense data the two are comparable.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"
#include "data/sparse_dataset.h"
#include "data/synthetic.h"
#include "optim/loss.h"
#include "optim/psgd.h"
#include "optim/schedule.h"
#include "optim/sparse_psgd.h"
#include "random/rng.h"

namespace bolton {
namespace {

// ~1%-density binary data in `dim` dimensions: each example activates a
// handful of class-correlated coordinates.
SparseDataset MakeSparseData(size_t m, size_t dim, uint64_t seed) {
  SparseDataset ds(dim, 2);
  Rng gen(seed);
  const size_t active = dim / 100 + 3;
  for (size_t i = 0; i < m; ++i) {
    bool positive = (i % 2 == 0);
    std::vector<SparseVector::Entry> entries;
    for (size_t f = 0; f < active; ++f) {
      size_t index = gen.UniformInt(dim / 2) + (positive ? 0 : dim / 2);
      bool duplicate = false;
      for (const auto& e : entries) duplicate |= (e.first == index);
      if (!duplicate) entries.emplace_back(index, 0.3);
    }
    ds.Add(SparseExample{
        SparseVector::FromEntries(dim, std::move(entries)).MoveValue(),
        positive ? +1 : -1});
  }
  ds.NormalizeToUnitBall();
  return ds;
}

void BM_DensePsgd(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  static std::map<size_t, Dataset>* cache = new std::map<size_t, Dataset>();
  auto it = cache->find(dim);
  if (it == cache->end()) {
    it = cache->emplace(dim, MakeSparseData(2000, dim, 31).ToDense()).first;
  }
  auto loss = MakeLogisticLoss(0.0, 1e300).MoveValue();
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 1;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto run = RunPsgd(it->second, *loss, *schedule, options, &rng);
    run.status().CheckOK();
    benchmark::DoNotOptimize(run.value().model);
  }
}

void BM_SparsePsgd(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  static std::map<size_t, SparseDataset>* cache =
      new std::map<size_t, SparseDataset>();
  auto it = cache->find(dim);
  if (it == cache->end()) {
    it = cache->emplace(dim, MakeSparseData(2000, dim, 31)).first;
  }
  auto schedule = MakeConstantStep(0.1).MoveValue();
  PsgdOptions options;
  options.passes = 1;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto run =
        RunSparseLogisticPsgd(it->second, 0.0, *schedule, options, &rng);
    run.status().CheckOK();
    benchmark::DoNotOptimize(run.value().model);
  }
}

BENCHMARK(BM_DensePsgd)->Arg(100)->Arg(1000)->Arg(10000)->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparsePsgd)->Arg(100)->Arg(1000)->Arg(10000)->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bolton

// Expanded BENCHMARK_MAIN so BOLTON_PROFILE=HZ can sample the run (the
// collapsed profile lands in BOLTON_PROFILE_OUT, default
// bench_profile.collapsed).
int main(int argc, char** argv) {
  bolton::bench::EnableTelemetryFromEnv();
  bolton::bench::EnableProfilerFromEnv();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bolton::bench::FinishProfilerFromEnv();
  return 0;
}
