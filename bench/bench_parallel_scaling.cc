// Parallel scaling of the sharded PSGD executor (the Figure 2 workload
// re-run across shard counts): total wall time for a full bolt-on private
// training run at shards ∈ {1, 2, 4, 8}, same total m, shard slices
// dispatched onto the persistent process pool. b = 1, d = 50, λ = 1e-4,
// ε = 0.1, δ = 1/m², strongly convex — the setting that maximizes
// per-update overhead, so the shard speedup is visible rather than drowned
// in noise sampling.
//
// Every m gets an explicit serial baseline row ("serial/m=..."), measured
// in THIS run, and every shard row's speedup is computed against it —
// regression tooling and readers compare rows inside one JSON file instead
// of eyeballing two. The shards=1 row is the executor's serial delegation
// and should track the serial row to noise.
//
// Expected shape: each shard runs PSGD over m/s examples, so with ≥ s
// hardware threads the wall time drops ~s× (minus partition/average
// overhead); on a single-core machine the pool removes the old per-run
// thread-spawn penalty, so shards ≥ 2 should at worst track serial (and can
// beat it when a shard's working set drops into cache). Accuracy is NOT
// compared here: sharding trades sensitivity (noise grows with the
// per-shard bound) for wall time; that trade is DESIGN.md §8's topic.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/private_sgd.h"
#include "optim/thread_pool.h"

namespace bolton {
namespace bench {
namespace {

// Best of kReps timed runs (after the first, the pool is warm and the
// partition path's pages are faulted in): single-shot numbers on a shared
// machine mostly measure scheduler noise, and a regression gate built on
// them flaps. Each rep re-seeds, so every rep does identical work.
constexpr int kReps = 3;

double RunSeconds(const Dataset& data, const LossFunction& loss,
                  size_t shards, uint64_t seed) {
  BoltOnOptions options;
  options.passes = 2;
  options.batch_size = 1;
  options.shards = shards;
  options.privacy = PrivacyParams{0.1, DeltaFor(data.size())};
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(seed);
    const double seconds = TimedSeconds("bench.parallel_scaling", [&] {
      PrivatePsgd(data, loss, options, &rng).status().CheckOK();
    });
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

void AddRow(const char* name_fmt, size_t shards_or_zero, size_t m,
            double seconds, double rows_per_sec) {
  BenchResultRow row;
  row.figure = "parallel_scaling";
  row.name = shards_or_zero == 0
                 ? StrFormat(name_fmt, m)
                 : StrFormat(name_fmt, shards_or_zero, m);
  row.dataset = "two_gaussians";
  row.algo = "ours";
  row.epsilon = 0.1;
  row.wall_seconds = seconds;
  row.rows_per_sec = rows_per_sec;
  AddBenchResult(std::move(row));
}

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_parallel_scaling").CheckOK();

  std::printf("== Parallel scaling: sharded bolt-on PSGD (total wall "
              "seconds; b=1, d=50, k=2, strongly convex (eps,delta)-DP) "
              "==\n\n");
  std::printf("  %-10s %-8s %-12s %-10s %-12s %-8s %-10s\n", "m", "shards",
              "seconds", "speedup", "rows/sec", "ipc", "cache-miss");

  // Warm the persistent pool once so the first shard row measures steady
  // state (pool dispatch), not one-time worker spawn — the process-lifetime
  // cost the pool design amortizes away by construction.
  GlobalThreadPool().ParallelRun(GlobalThreadPool().max_threads(),
                                 [](size_t) {});

  auto loss = MakeLogisticLoss(1e-4, 1e4).MoveValue();
  std::vector<size_t> sizes;
  for (size_t base : {50000, 100000}) {
    sizes.push_back(static_cast<size_t>(base * flags.scale));
  }
  for (size_t m : sizes) {
    Dataset data =
        GenerateTwoGaussians(m, 50, 1.5, flags.seed + m).MoveValue();

    // The serial baseline row: shards = 1 IS the serial path (bit-identical
    // delegation to RunPsgd), measured fresh here so every speedup below is
    // an in-bench ratio.
    const double serial_seconds = RunSeconds(data, *loss, 1, flags.seed);
    const double serial_rows =
        serial_seconds > 0 ? static_cast<double>(m) / serial_seconds : 0;
    std::printf("  %-10zu %-8s %-12.4f %-10.2f %-12.0f %-8s %-10s\n", m,
                "serial", serial_seconds, 1.0, serial_rows, "-", "-");
    AddRow("serial/m=%zu", 0, m, serial_seconds, serial_rows);

    for (size_t shards : {1, 2, 4, 8}) {
      const obs::PerfCounterDelta before = obs::ProcessPerfTotals();
      const double seconds = RunSeconds(data, *loss, shards, flags.seed);
      const obs::PerfCounterDelta run = obs::ProcessPerfTotals() - before;
      const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
      const double rows_per_sec =
          seconds > 0 ? static_cast<double>(m) / seconds : 0;
      if (run.available) {
        std::printf("  %-10zu %-8zu %-12.4f %-10.2f %-12.0f %-8.2f %-10.4f\n",
                    m, shards, seconds, speedup, rows_per_sec, run.Ipc(),
                    run.CacheMissRate());
      } else {
        std::printf("  %-10zu %-8zu %-12.4f %-10.2f %-12.0f %-8s %-10s\n", m,
                    shards, seconds, speedup, rows_per_sec, "-", "-");
      }
      AddRow("shards=%zu/m=%zu", shards, m, seconds, rows_per_sec);
    }
  }
  std::printf("\nShape check: with >= s hardware threads the wall time "
              "drops ~s x at s shards; on a single core the pool keeps "
              "shard rows tracking the serial row (same arithmetic, "
              "serialized, no per-run thread spawn).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
