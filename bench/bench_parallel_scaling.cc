// Parallel scaling of the sharded PSGD executor (the Figure 2 workload
// re-run across shard counts): total wall time for a full bolt-on private
// training run at shards ∈ {1, 2, 4, 8}, same total m, one worker thread
// per shard. b = 1, d = 50, λ = 1e-4, ε = 0.1, δ = 1/m², strongly convex —
// the setting that maximizes per-update overhead, so the shard speedup is
// visible rather than drowned in noise sampling.
//
// Expected shape: each shard runs PSGD over m/s examples, so with ≥ s
// hardware threads the wall time drops ~s× (minus partition/average
// overhead); on a single-core machine the wall time is flat (the work is
// the same, serialized) — the printed speedup column makes either case
// visible. Accuracy is NOT compared here: sharding trades sensitivity
// (noise grows with the per-shard bound) for wall time; that trade is
// DESIGN.md §8's topic.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/private_sgd.h"

namespace bolton {
namespace bench {
namespace {

double RunSeconds(const Dataset& data, const LossFunction& loss,
                  size_t shards, uint64_t seed) {
  BoltOnOptions options;
  options.passes = 2;
  options.batch_size = 1;
  options.shards = shards;
  options.privacy = PrivacyParams{0.1, DeltaFor(data.size())};
  Rng rng(seed);
  return TimedSeconds("bench.parallel_scaling", [&] {
    PrivatePsgd(data, loss, options, &rng).status().CheckOK();
  });
}

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_parallel_scaling").CheckOK();

  std::printf("== Parallel scaling: sharded bolt-on PSGD (total wall "
              "seconds; b=1, d=50, k=2, strongly convex (eps,delta)-DP) "
              "==\n\n");
  std::printf("  %-10s %-8s %-12s %-10s %-12s %-8s %-10s\n", "m", "shards",
              "seconds", "speedup", "rows/sec", "ipc", "cache-miss");

  auto loss = MakeLogisticLoss(1e-4, 1e4).MoveValue();
  std::vector<size_t> sizes;
  for (size_t base : {50000, 100000}) {
    sizes.push_back(static_cast<size_t>(base * flags.scale));
  }
  for (size_t m : sizes) {
    Dataset data =
        GenerateTwoGaussians(m, 50, 1.5, flags.seed + m).MoveValue();
    double serial_seconds = 0.0;
    for (size_t shards : {1, 2, 4, 8}) {
      const obs::PerfCounterDelta before = obs::ProcessPerfTotals();
      const double seconds = RunSeconds(data, *loss, shards, flags.seed);
      const obs::PerfCounterDelta run = obs::ProcessPerfTotals() - before;
      if (shards == 1) serial_seconds = seconds;
      const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
      const double rows_per_sec =
          seconds > 0 ? static_cast<double>(m) / seconds : 0;
      if (run.available) {
        std::printf("  %-10zu %-8zu %-12.4f %-10.2f %-12.0f %-8.2f %-10.4f\n",
                    m, shards, seconds, speedup, rows_per_sec, run.Ipc(),
                    run.CacheMissRate());
      } else {
        std::printf("  %-10zu %-8zu %-12.4f %-10.2f %-12.0f %-8s %-10s\n", m,
                    shards, seconds, speedup, rows_per_sec, "-", "-");
      }
      BenchResultRow row;
      row.figure = "parallel_scaling";
      row.name = StrFormat("shards=%zu/m=%zu", shards, m);
      row.dataset = "two_gaussians";
      row.algo = "ours";
      row.epsilon = 0.1;
      row.wall_seconds = seconds;
      row.rows_per_sec = rows_per_sec;
      AddBenchResult(std::move(row));
    }
  }
  std::printf("\nShape check: with >= s hardware threads the wall time "
              "drops ~s x at s shards; on a single core it stays flat "
              "(same arithmetic, serialized).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
