// Figure 2 — scalability of the (ε,δ)-DP SGD algorithms inside the engine:
// per-epoch runtime as the number of examples grows, for (a) in-memory
// tables and (b) disk-backed tables. Mini-batch size 1 (the paper's
// setting, which maximizes the white-box algorithms' noise-sampling
// overhead), d = 50, ε = 0.1, λ = 1e-4, strongly convex.
//
// Expected shape (paper): all four curves are linear in m. In memory,
// SCS13 and BST14 sit well above Noiseless/Ours (per-update noise sampling
// dominates CPU); on disk all curves converge because I/O dominates and is
// identical across algorithms. "Ours" tracks Noiseless exactly.
#include <cstdio>

#include "bench/bench_common.h"
#include "engine/driver.h"
#include "random/distributions.h"
#include "random/dp_noise.h"

namespace bolton {
namespace bench {
namespace {

// Per-update white-box noise with a fixed configuration; the runtime cost,
// not the calibration, is what Figure 2 measures.
class Scs13StyleNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
    return SampleSphericalLaplace(dim, 0.04, 0.01, rng);
  }
};

class Bst14StyleNoise final : public GradientNoiseSource {
 public:
  Result<Vector> Sample(size_t, size_t dim, Rng* rng) override {
    return SampleGaussianVector(dim, 0.5, rng);
  }
};

double EpochSeconds(Table* table, const LossFunction& loss, bool bolt_on,
                    GradientNoiseSource* noise, uint64_t seed) {
  auto schedule =
      MakeInverseTimeStep(loss.strong_convexity(), loss.smoothness())
          .MoveValue();
  DriverOptions options;
  options.max_epochs = 1;
  options.batch_size = 1;
  options.radius = loss.radius();
  Rng rng(seed);
  auto out = RunSgdDriver(table, loss, *schedule, options, &rng, noise);
  out.status().CheckOK();
  double seconds = out.value().epoch_seconds[0];
  if (bolt_on) {
    // Ours adds exactly one draw after the run; include it for honesty.
    Rng noise_rng(seed + 1);
    seconds += TimedSeconds("bench.bolton_draw", [&] {
      SampleSphericalLaplace(table->dim(), 1e-4, 0.1, &noise_rng)
          .status()
          .CheckOK();
    });
  }
  return seconds;
}

void RunPanel(const char* title, StorageMode mode,
              const std::vector<size_t>& sizes, uint64_t seed) {
  std::printf("%s\n", title);
  std::printf("  %-10s %-12s %-12s %-12s %-12s\n", "m", "noiseless",
              "ours", "scs13", "bst14");
  const char* storage = mode == StorageMode::kMemory ? "memory" : "disk";
  auto loss = MakeLogisticLoss(1e-4, 1e4).MoveValue();
  for (size_t m : sizes) {
    Dataset data = GenerateTwoGaussians(m, 50, 1.5, seed + m).MoveValue();
    std::string spill =
        StrFormat("/tmp/bolton_fig2_%zu.bin", m);
    auto table = MakeTable(data, mode, spill, 4096).MoveValue();

    Scs13StyleNoise scs13;
    Bst14StyleNoise bst14;
    const std::pair<const char*, double> timings[] = {
        {"noiseless", EpochSeconds(table.get(), *loss, false, nullptr, seed)},
        {"ours", EpochSeconds(table.get(), *loss, true, nullptr, seed)},
        {"scs13", EpochSeconds(table.get(), *loss, false, &scs13, seed)},
        {"bst14", EpochSeconds(table.get(), *loss, false, &bst14, seed)},
    };
    std::printf("  %-10zu %-12.4f %-12.4f %-12.4f %-12.4f\n", m,
                timings[0].second, timings[1].second, timings[2].second,
                timings[3].second);
    for (const auto& [algo, seconds] : timings) {
      BenchResultRow row;
      row.figure = "fig2_scalability";
      row.name = StrFormat("%s/%s/m=%zu", storage, algo, m);
      row.dataset = "two_gaussians";
      row.algo = algo;
      row.wall_seconds = seconds;
      row.rows_per_sec = seconds > 0 ? static_cast<double>(m) / seconds : 0;
      AddBenchResult(std::move(row));
    }
  }
}

int Run(int argc, char** argv) {
  CommonFlags flags;
  flags.Parse(argc, argv, "bench_fig2_scalability").CheckOK();

  std::printf("== Figure 2: Scalability (per-epoch runtime, seconds; "
              "b=1, d=50, strongly convex (eps,delta)-DP) ==\n\n");
  std::vector<size_t> sizes;
  for (size_t base : {25000, 50000, 100000, 200000}) {
    sizes.push_back(static_cast<size_t>(base * flags.scale));
  }
  RunPanel("(a) In-memory table", StorageMode::kMemory, sizes, flags.seed);
  std::printf("\n");
  RunPanel("(b) Disk-backed table (paged scans + external shuffle)",
           StorageMode::kDisk, sizes, flags.seed + 1);
  std::printf("\nShape check: runtimes grow linearly in m; SCS13/BST14 carry "
              "per-update sampling overhead that Ours avoids entirely.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Run(argc, argv); }
