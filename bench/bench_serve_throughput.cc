// Serve-daemon throughput under multi-tenant load: 1 / 4 / 16 concurrent
// tenants hammer POST /v1/train on an in-process ServeDaemon and we report
// p50/p99 latency, sustained request rate, and the refusal rate produced by
// the admission ladder (tenant caps + global cap). The budget store runs
// in-memory so the numbers measure the daemon, not the host's fsync; the
// persistence path has its own tests and the cli smoke test.
//
// Rows land in --json-out as figure "serve_throughput" for benchdiff.

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/daemon.h"
#include "util/net.h"

namespace bolton {
namespace bench {
namespace {

struct ClientStats {
  std::vector<double> latencies_ms;  // successful requests only
  int ok = 0;
  int refused = 0;  // 429/503 from the degradation ladder
  int failed = 0;   // transport errors / unexpected statuses
};

/// One POST /v1/train; returns the HTTP status (0 on transport failure).
int PostTrain(int port, const std::string& body) {
  auto fd = net::ConnectTcp(static_cast<uint16_t>(port));
  if (!fd.ok()) return 0;
  const std::string request = StrFormat(
      "POST /v1/train HTTP/1.0\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/json\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n%s",
      body.size(), body.c_str());
  if (!net::SendAll(fd.value(), request.data(), request.size(), 10000).ok()) {
    net::CloseFd(fd.value());
    return 0;
  }
  auto response = net::RecvAll(fd.value(), 1 << 20, 30000);
  net::CloseFd(fd.value());
  if (!response.ok()) return 0;
  const std::vector<std::string> parts = StrSplit(response.value(), ' ');
  if (parts.size() < 2) return 0;
  auto code = ParseInt(parts[1]);
  return code.ok() ? static_cast<int>(code.value()) : 0;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1) + 0.5));
  return sorted[index];
}

}  // namespace

int Main(int argc, char** argv) {
  CommonFlags flags;
  Status parsed = flags.Parse(argc, argv, "bench_serve_throughput");
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }

  // Enough requests per tenant that p99 means something, scaled by --scale.
  const int requests_per_tenant =
      std::max(8, static_cast<int>(24 * flags.scale));

  std::printf("Serve throughput: POST /v1/train, bolton, protein@0.05\n");
  std::printf("  %-8s %-8s %-6s %-8s %-12s %-9s %-9s %-10s\n", "tenants",
              "requests", "ok", "refused", "refusal_rate", "p50_ms",
              "p99_ms", "req_per_s");

  for (const size_t tenants : {1u, 4u, 16u}) {
    serve::ServeOptions options;
    options.port = 0;
    // More handler threads than admission slots, so saturation reaches the
    // admission ladder and sheds (rather than queueing invisibly in the
    // HTTP layer and reporting a zero refusal rate forever).
    options.handler_threads = 16;
    options.max_pending = 64;
    // Effectively infinite budget: the refusals this bench measures come
    // from the admission ladder, not from ε exhaustion.
    options.budget.default_budget = PrivacyParams{1e9, 1e-3};
    options.admission.max_inflight = 8;
    options.admission.max_inflight_per_tenant = 2;
    auto daemon = serve::ServeDaemon::Start(options);
    if (!daemon.ok()) {
      std::fprintf(stderr, "daemon start failed: %s\n",
                   daemon.status().ToString().c_str());
      return 1;
    }
    const int port = daemon.value()->port();

    auto body_for = [&](size_t tenant) {
      // Heavy enough that solver time dominates the request: saturation
      // then shows up as admission-ladder refusals, not just queueing.
      return StrFormat(
          "{\"tenant\":\"t%zu\",\"algorithm\":\"bolton\",\"epsilon\":0.01,"
          "\"delta\":1e-7,\"passes\":3,\"batch_size\":50,\"scale\":0.05,"
          "\"seed\":%llu}",
          tenant, static_cast<unsigned long long>(flags.seed + tenant));
    };
    // Warm the daemon's dataset cache so the timed window measures request
    // handling, not one-time synthesis.
    (void)PostTrain(port, body_for(0));

    std::vector<ClientStats> stats(tenants);
    double wall = TimedSeconds("bench.serve_throughput", [&] {
      std::vector<std::thread> clients;
      clients.reserve(tenants);
      for (size_t t = 0; t < tenants; ++t) {
        clients.emplace_back([&, t] {
          const std::string body = body_for(t);
          for (int i = 0; i < requests_per_tenant; ++i) {
            const uint64_t start_ns = obs::MonotonicNanos();
            const int status = PostTrain(port, body);
            const double ms =
                static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-6;
            if (status == 200) {
              stats[t].latencies_ms.push_back(ms);
              ++stats[t].ok;
            } else if (status == 429 || status == 503) {
              ++stats[t].refused;
            } else {
              ++stats[t].failed;
            }
          }
        });
      }
      for (std::thread& client : clients) client.join();
    });

    std::vector<double> latencies;
    int ok = 0, refused = 0, failed = 0;
    for (const ClientStats& s : stats) {
      latencies.insert(latencies.end(), s.latencies_ms.begin(),
                       s.latencies_ms.end());
      ok += s.ok;
      refused += s.refused;
      failed += s.failed;
    }
    std::sort(latencies.begin(), latencies.end());
    const int total = ok + refused + failed;
    const double refusal_rate =
        total > 0 ? static_cast<double>(refused) / total : 0.0;
    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    const double rate = wall > 0.0 ? ok / wall : 0.0;
    std::printf("  %-8zu %-8d %-6d %-8d %-12.3f %-9.2f %-9.2f %-10.1f\n",
                tenants, total, ok, refused, refusal_rate, p50, p99, rate);
    if (failed > 0) {
      std::fprintf(stderr, "WARNING: %d transport failures at %zu tenants\n",
                   failed, tenants);
    }

    BenchResultRow row;
    row.figure = "serve_throughput";
    row.name = StrFormat("tenants_%zu", tenants);
    row.dataset = "protein";
    row.algo = "bolton";
    row.epsilon = 0.01;
    row.wall_seconds = wall;
    row.rows_per_sec = rate;  // served requests per second
    AddBenchResult(std::move(row));

    daemon.value()->Shutdown();
  }
  return 0;
}

}  // namespace bench
}  // namespace bolton

int main(int argc, char** argv) { return bolton::bench::Main(argc, argv); }
